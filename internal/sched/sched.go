// Package sched implements PreemptDB's transaction scheduling layer
// (paper §4.1, §5): a scheduling thread dispatches priority-tagged
// transaction requests into per-worker high- and low-priority queues, and
// each worker — a simulated core hosting two transaction contexts — executes
// them under one of the competing policies the paper evaluates:
//
//   - Wait: non-preemptive. A worker runs a transaction to completion, then
//     exhausts the high-priority queue before taking the next low-priority
//     transaction.
//   - Cooperative: Wait plus engine-level yield points — after every
//     YieldInterval record accesses the worker checks the high-priority
//     queue and voluntarily swaps to the preemptive context.
//   - CooperativeHandcrafted: Wait plus workload-placed yield points
//     (the workload calls Yield at hand-chosen locations).
//   - Preempt: PreemptDB. The scheduler sends a user interrupt after
//     enqueueing a high-priority batch; the worker's interrupt handler
//     switches to the preemptive context at the next instruction boundary.
//
// Batched on-demand preemption and starvation prevention follow §5: a batch
// is pushed round-robin with one interrupt per touched worker, the scheduler
// skips workers whose starvation level exceeds the threshold, and the
// preemptive context returns the core early when the threshold is crossed
// mid-batch.
package sched

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"preemptdb/internal/clock"
	"preemptdb/internal/metrics"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/queue"
	"preemptdb/internal/uintr"
)

// Policy selects the scheduling discipline.
type Policy uint8

// The scheduling policies the paper compares (§6.1 "Competing Methods").
const (
	PolicyWait Policy = iota
	PolicyCooperative
	PolicyCooperativeHandcrafted
	PolicyPreempt
)

func (p Policy) String() string {
	switch p {
	case PolicyWait:
		return "Wait"
	case PolicyCooperative:
		return "Cooperative"
	case PolicyCooperativeHandcrafted:
		return "Cooperative (Handcrafted)"
	case PolicyPreempt:
		return "PreemptDB"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Request is one transaction request flowing through the scheduler. Its
// lifecycle fields (Deadline, Cancel) form the descriptor the worker arms on
// the executing context, so in-flight cancellation rides the same poll
// instrumentation that makes preemption work.
type Request struct {
	// HighPriority marks the short, latency-sensitive class.
	HighPriority bool
	// Work runs the transaction body on the executing context. Conflict
	// retries are the body's responsibility; the returned error is recorded.
	Work func(ctx *pcontext.Context) error

	// Deadline is the absolute clock.Nanos() instant after which the request
	// is worthless (0 = none). An expired request still queued is shed
	// before execution; a running one is canceled at its next poll.
	Deadline int64

	// EnqueuedAt is stamped by the submitter (clock.Nanos); StartedAt and
	// FinishedAt by the executing worker. Scheduling latency is
	// StartedAt-EnqueuedAt; end-to-end latency FinishedAt-EnqueuedAt.
	EnqueuedAt int64
	StartedAt  int64
	FinishedAt int64
	Err        error

	// OnDone, when set, is called after FinishedAt is stamped.
	OnDone func(*Request)

	// canceled is the submitter-side cancel flag; execCtx/execGen identify
	// the context currently running the request so Cancel can reach a
	// transaction already in flight (the generation fences stale cancels).
	canceled atomic.Bool
	execCtx  atomic.Pointer[pcontext.Context]
	execGen  atomic.Uint64
}

// Cancel marks the request canceled. Queued requests are shed before
// execution; a request already running is canceled at its executing
// context's next poll. Safe to call from any goroutine, repeatedly, and at
// any point in the request's life (after completion it is a no-op).
func (r *Request) Cancel() {
	r.canceled.Store(true)
	if ctx := r.execCtx.Load(); ctx != nil {
		ctx.CancelGen(r.execGen.Load())
	}
}

// Canceled reports whether Cancel was called.
func (r *Request) Canceled() bool { return r.canceled.Load() }

// expired reports whether the request's deadline has passed at time now.
func (r *Request) expired(now int64) bool {
	return r.Deadline != 0 && now >= r.Deadline
}

// SchedulingLatency returns StartedAt-EnqueuedAt in nanoseconds.
func (r *Request) SchedulingLatency() int64 { return r.StartedAt - r.EnqueuedAt }

// Latency returns the end-to-end FinishedAt-EnqueuedAt in nanoseconds.
func (r *Request) Latency() int64 { return r.FinishedAt - r.EnqueuedAt }

// Config sizes and parameterizes a Scheduler. Zero values take the paper's
// defaults (§6.1).
type Config struct {
	// Policy is the scheduling discipline. Default PolicyWait.
	Policy Policy
	// Workers is the number of simulated cores. Default 4.
	Workers int
	// HiQueueSize is the per-worker high-priority queue capacity. Default 4.
	HiQueueSize int
	// LoQueueSize is the per-worker low-priority queue capacity. Default 1.
	LoQueueSize int
	// YieldInterval is the record-access count between cooperative yield
	// checks. Default 10000.
	YieldInterval uint64
	// StarvationThreshold is the maximum starvation level L (fraction of a
	// paused low-priority transaction's lifetime spent on high-priority
	// work). Values >= 1 effectively disable prevention; the paper's default
	// is 100. Default 100.
	StarvationThreshold float64
	// MorselQueueSize caps the shared stealable morsel-task queue (parallel
	// analytical sub-requests, see SubmitMorsel). Default 64.
	MorselQueueSize int
	// Metrics receives the per-phase latency decomposition (queue wait,
	// execution, pauses, resume, end-to-end) and uintr delivery latency.
	// Default: a fresh registry — instrumentation is always on; pass a shared
	// registry to aggregate with the engine's WAL-wait observations.
	Metrics *metrics.Registry
	// TraceCapacity sizes the always-on per-core scheduling-event ring
	// (events retained per core, rounded up to a power of two). Default 4096;
	// negative disables tracing.
	TraceCapacity int
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.HiQueueSize == 0 {
		c.HiQueueSize = 4
	}
	if c.LoQueueSize == 0 {
		c.LoQueueSize = 1
	}
	if c.YieldInterval == 0 {
		c.YieldInterval = 10000
	}
	if c.StarvationThreshold == 0 {
		c.StarvationThreshold = 100
	}
	if c.MorselQueueSize == 0 {
		c.MorselQueueSize = 64
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.TraceCapacity == 0 {
		c.TraceCapacity = 4096
	}
	return c
}

// Scheduler owns the workers and implements the dispatch side of the
// policies. One goroutine (the "scheduling thread") should perform all
// Submit calls; workers consume concurrently.
type Scheduler struct {
	cfg     Config
	workers []*Worker
	rr      int // round-robin cursor for high-priority dispatch

	// morselQ is the shared stealable work queue for parallel analytical
	// sub-requests: any worker with nothing else to do pops a task and helps
	// a neighbor's query. MPMC because every worker consumes and any context
	// may produce.
	morselQ *queue.MPMC[func(*pcontext.Context)]

	interruptsSent  atomic.Uint64
	starvationSkips atomic.Uint64
	shedExpired     atomic.Uint64
	shedCanceled    atomic.Uint64
	morselsStolen   atomic.Uint64
	started         bool

	// metrics is the shared phase-latency registry (never nil after New).
	metrics *metrics.Registry
	// traceSeq issues the per-request trace tags stamped on the executing
	// context so trace events can be attributed to a transaction.
	traceSeq atomic.Uint64
}

// Worker is one simulated core with its two transaction contexts and queues.
type Worker struct {
	id   int
	s    *Scheduler
	core *pcontext.Core
	// hiQ is multi-consumer: both the regular and the preemptive context pop
	// from it (never truly concurrently, but across the park/unpark handoff).
	hiQ *queue.MPMC[*Request]
	loQ *queue.SPSC[*Request]

	executedHi atomic.Uint64
	executedLo atomic.Uint64

	// Pause accounting for the request currently occupying the regular
	// context. Plain fields: every access happens either on the context that
	// holds the core or across the park/unpark handoff, which orders them.
	// execute saves/restores them so a high-priority request running on the
	// preemptive context doesn't clobber the paused request's state.
	pauseNs  int64         // preempted-pause nanoseconds accumulated so far
	resumeAt int64         // stamped by the preemptive loop just before handing the core back
	curClass metrics.Class // class of the request the accumulator belongs to
}

// ID returns the worker index.
func (w *Worker) ID() int { return w.id }

// Core exposes the worker's simulated core.
func (w *Worker) Core() *pcontext.Core { return w.core }

// ExecutedHigh returns the number of completed high-priority requests.
func (w *Worker) ExecutedHigh() uint64 { return w.executedHi.Load() }

// ExecutedLow returns the number of completed low-priority requests.
func (w *Worker) ExecutedLow() uint64 { return w.executedLo.Load() }

// New builds a scheduler; call Start to launch the workers.
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:     cfg,
		morselQ: queue.NewMPMC[func(*pcontext.Context)](cfg.MorselQueueSize),
		metrics: cfg.Metrics,
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &Worker{
			id:   i,
			s:    s,
			core: pcontext.NewCore(i, 2),
			hiQ:  queue.NewMPMC[*Request](cfg.HiQueueSize),
			loQ:  queue.NewSPSC[*Request](cfg.LoQueueSize),
		}
		w.core.SetUserData(w)
		if cfg.TraceCapacity > 0 {
			w.core.SetTracer(pcontext.NewTracer(cfg.TraceCapacity))
		}
		id := i
		w.core.SetDeliveryObserver(func(ns int64) { s.metrics.ObserveDelivery(id, ns) })
		s.workers = append(s.workers, w)
	}
	return s
}

// Metrics returns the scheduler's phase-latency registry (never nil).
func (s *Scheduler) Metrics() *metrics.Registry { return s.metrics }

// TraceSnapshot collects every worker's scheduling-event trace. Safe while
// the scheduler runs; see Tracer.Snapshot for the staleness contract.
func (s *Scheduler) TraceSnapshot() []pcontext.CoreEvents {
	var out []pcontext.CoreEvents
	for _, w := range s.workers {
		if tr := w.core.Tracer(); tr != nil {
			out = append(out, pcontext.CoreEvents{Core: w.id, Events: tr.Snapshot()})
		}
	}
	return out
}

// Config returns the effective configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Workers returns the worker set.
func (s *Scheduler) Workers() []*Worker { return s.workers }

// InterruptsSent returns the number of user interrupts issued.
func (s *Scheduler) InterruptsSent() uint64 { return s.interruptsSent.Load() }

// StarvationSkips returns how many scheduler-side dispatches were withheld
// because a worker's starvation level exceeded the threshold.
func (s *Scheduler) StarvationSkips() uint64 { return s.starvationSkips.Load() }

// ShedExpired returns how many queued requests were dropped at dispatch
// because their deadline had already passed.
func (s *Scheduler) ShedExpired() uint64 { return s.shedExpired.Load() }

// ShedCanceled returns how many queued requests were dropped at dispatch
// because their submitter canceled them before they ran.
func (s *Scheduler) ShedCanceled() uint64 { return s.shedCanceled.Load() }

// MorselsStolen returns how many morsel helper tasks idle workers picked up
// from the shared queue.
func (s *Scheduler) MorselsStolen() uint64 { return s.morselsStolen.Load() }

// SubmitMorsel offers one stealable morsel helper task to the shared queue.
// Unlike SubmitLow/SubmitHighBatch it is safe from any goroutine (the queue
// is MPMC), because analytical transactions spawn helpers from whichever
// worker context they run on. A worker claims a task only when both its
// priority queues are empty — morsels are strictly lower priority than every
// queued request — and runs it with the starvation meter armed, so a
// high-priority burst preempts a stolen morsel exactly like any other
// low-priority transaction. Returns false when the queue is full; the caller
// simply runs more morsels itself.
func (s *Scheduler) SubmitMorsel(fn func(ctx *pcontext.Context)) bool {
	if fn == nil {
		return false
	}
	return s.morselQ.Push(fn)
}

// MorselSpawner returns a spawn function that dispatches morsel helper tasks
// to the scheduler owning ctx's core, or nil when ctx is detached (no
// scheduler — callers then run their morsels inline). The signature matches
// engine.ParallelScanConfig.Spawn.
func MorselSpawner(ctx *pcontext.Context) func(fn func(ctx *pcontext.Context)) bool {
	if ctx == nil || ctx.Core() == nil {
		return nil
	}
	w, ok := ctx.Core().UserData().(*Worker)
	if !ok {
		return nil
	}
	return w.s.SubmitMorsel
}

// Start launches every worker's contexts and installs the policy hooks.
func (s *Scheduler) Start() {
	if s.started {
		panic("sched: Start called twice")
	}
	s.started = true
	for _, w := range s.workers {
		w.install()
		w.core.Start([]func(*pcontext.Context){w.regularLoop, w.preemptiveLoop})
	}
}

// Stop shuts every worker down and waits for their contexts to exit.
// Requests still queued are dropped.
func (s *Scheduler) Stop() {
	for _, w := range s.workers {
		// Wake the core via a shutdown vector in case it sits in a long
		// transaction polling only for interrupts.
		uintr.SendUIPI(w.core.Receiver().UPID(), uintr.VecShutdown)
	}
	for _, w := range s.workers {
		w.core.Shutdown()
	}
}

// install wires the policy-specific handler/hook on the worker's core.
func (w *Worker) install() {
	switch w.s.cfg.Policy {
	case PolicyPreempt:
		w.core.SetHandler(func(cur *pcontext.Context, vectors uint64) {
			if !uintr.Has(vectors, uintr.VecPreempt) {
				return // e.g. shutdown ping
			}
			w.handlePreempt(cur)
		})
	case PolicyCooperative:
		interval := w.s.cfg.YieldInterval
		w.core.SetPollHook(func(cur *pcontext.Context) {
			cls := cur.CLS()
			if cls.Accesses-cls.LastYield < interval {
				return
			}
			cls.LastYield = cls.Accesses
			w.yieldPoint(cur)
		})
	default:
		// Wait and CooperativeHandcrafted install nothing; the latter's
		// yields come from workload calls to Yield.
	}
}

// handlePreempt is the user-interrupt handler body: switch the regular
// context to the preemptive one if there is work and no reason to hold back.
// It runs with interrupts disabled (UIF clear), like a hardware handler.
func (w *Worker) handlePreempt(cur *pcontext.Context) {
	if w.core.Done() {
		return
	}
	hp := w.core.Context(1)
	if cur == hp {
		// The paper does not interrupt an in-progress high-priority
		// transaction; drop the interrupt (the queue will be drained by the
		// already-running preemptive loop).
		return
	}
	if w.hiQ.Empty() {
		return // spurious or raced: nothing to do (fig8's overhead path)
	}
	pauseStart := clock.Nanos()
	cur.SwitchTo(hp)
	w.notePauseEnd(pauseStart)
}

// notePauseEnd runs on the regular context the instant it holds the core
// again after a preemption: it accumulates the pause into the paused
// request's total and records the per-pause and resume-latency phases.
func (w *Worker) notePauseEnd(pauseStart int64) {
	now := clock.Nanos()
	pause := now - pauseStart
	w.pauseNs += pause
	m := w.s.metrics
	m.Observe(w.curClass, metrics.PhasePause, w.id, pause)
	if w.resumeAt != 0 {
		m.Observe(w.curClass, metrics.PhaseResume, w.id, now-w.resumeAt)
		w.resumeAt = 0
	}
}

// yieldPoint implements the cooperative check: if high-priority work is
// queued, voluntarily swap to the preemptive context (which drains the queue
// and swaps back).
func (w *Worker) yieldPoint(cur *pcontext.Context) {
	if w.core.Done() || cur != w.core.Context(0) {
		return
	}
	if w.hiQ.Empty() {
		return
	}
	pauseStart := clock.Nanos()
	cur.SwapContext(w.core.Context(1))
	w.notePauseEnd(pauseStart)
}

// Yield is the workload-visible yield point for handcrafted cooperative
// scheduling (paper §6.3's Cooperative (Handcrafted)): the workload calls it
// at hand-chosen locations, e.g. every N nested query blocks of Q2. It is a
// no-op for contexts not owned by a scheduler worker.
func Yield(ctx *pcontext.Context) {
	if ctx == nil || ctx.Core() == nil {
		return
	}
	w, ok := ctx.Core().UserData().(*Worker)
	if !ok {
		return
	}
	w.yieldPoint(ctx)
}

// regularLoop is context 0's body: the regular scheduling path. It prefers
// the high-priority queue between transactions (all policies do, per §6.1's
// Wait definition), then runs low-priority transactions with starvation
// accounting armed.
func (w *Worker) regularLoop(ctx *pcontext.Context) {
	idle := 0
	ranLow := false
	for !w.core.Done() {
		// §6.1: "Each worker thread starts with the low-priority transaction
		// queue to run Q2" and only then prefers the high-priority queue
		// between transactions. Starting low also arms the starvation meter
		// before any admission decision is taken against this worker.
		if !ranLow {
			if req, ok := w.loQ.Pop(); ok {
				w.runLow(ctx, req)
				ranLow = true
				idle = 0
				continue
			}
		}
		if req, ok := w.hiQ.Pop(); ok {
			w.execute(ctx, req)
			idle = 0
			continue
		}
		if req, ok := w.loQ.Pop(); ok {
			w.runLow(ctx, req)
			ranLow = true
			idle = 0
			continue
		}
		// Both priority queues empty: help a neighbor's parallel scan before
		// going idle. Morsel tasks run with the starvation meter armed, so a
		// high-priority burst preempts the stolen work like any low-priority
		// transaction.
		if fn, ok := w.s.morselQ.Pop(); ok {
			w.runMorsel(ctx, fn)
			idle = 0
			continue
		}
		// Idle: back off so other simulated cores get real CPU time.
		idle++
		if idle < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(10 * time.Microsecond)
		}
	}
}

// preemptiveLoop is context 1's body: it wakes when switched to, drains the
// high-priority queue (stopping early if the starvation threshold is
// crossed, §5), and actively swaps the core back to the paused context.
func (w *Worker) preemptiveLoop(ctx *pcontext.Context) {
	thr := w.s.cfg.StarvationThreshold
	for !w.core.Done() {
		for {
			// >= so a threshold of 0 admits nothing on the preemptive
			// context (fig12's extreme point: those requests drain through
			// the regular path instead).
			if thr < 1 && w.core.StarvationLevel() >= thr {
				break // return the core to the starved low-priority txn
			}
			req, ok := w.hiQ.Pop()
			if !ok {
				break
			}
			start := clock.Nanos()
			w.execute(ctx, req)
			w.core.AddHighPrioNanos(clock.Nanos() - start)
		}
		// Stamp the hand-back decision instant so the paused context can
		// report its resume latency once it actually runs.
		w.resumeAt = clock.Nanos()
		ctx.SwapContext(w.core.Context(0))
	}
}

// runLow executes a low-priority request with starvation accounting armed:
// the meter resets at transaction start and freezes its final level at the
// end (paper §5).
func (w *Worker) runLow(ctx *pcontext.Context, req *Request) {
	w.core.BeginLowPrio()
	w.execute(ctx, req)
	w.core.EndLowPrio()
}

// runMorsel executes one stolen morsel helper task under low-priority
// starvation accounting. The task arms/disarms its own lifecycle (the engine
// helper does this), so the scheduler only brackets the starvation meter.
func (w *Worker) runMorsel(ctx *pcontext.Context, fn func(*pcontext.Context)) {
	w.s.morselsStolen.Add(1)
	savedPause, savedClass := w.pauseNs, w.curClass
	w.pauseNs, w.curClass = 0, metrics.ClassLo
	w.core.BeginLowPrio()
	fn(ctx)
	w.core.EndLowPrio()
	w.pauseNs, w.curClass = savedPause, savedClass
}

// shed completes a request without running it — the dispatch-side drop for
// requests that were canceled, or whose deadline expired, while still queued.
// Executing such a request would only burn core time its submitter has
// already written off. Returns true when the request was shed.
func (w *Worker) shed(req *Request) bool {
	now := clock.Nanos()
	switch {
	case req.Canceled():
		req.Err = pcontext.ErrCanceled
		w.s.shedCanceled.Add(1)
	case req.expired(now):
		req.Err = pcontext.ErrDeadlineExceeded
		w.s.shedExpired.Add(1)
	default:
		return false
	}
	req.StartedAt = now
	req.FinishedAt = now
	if req.OnDone != nil {
		req.OnDone(req)
	}
	return true
}

// execute runs one request, stamping its latency fields. The request's
// lifecycle descriptor is armed on the executing context for the duration of
// Work, so Poll observes the deadline and cross-goroutine Cancel at
// instruction granularity.
func (w *Worker) execute(ctx *pcontext.Context, req *Request) {
	if w.shed(req) {
		return
	}
	class := metrics.ClassLo
	if req.HighPriority {
		class = metrics.ClassHi
	}
	// Fresh pause accumulator for this request; save the paused request's
	// state (a high-priority request executing on the preemptive context
	// interleaves with a paused one on the regular context).
	savedPause, savedClass := w.pauseNs, w.curClass
	w.pauseNs, w.curClass = 0, class
	// Annotate trace events and engine-side observations (the commit path
	// reads CLS.HighPrio to classify its WAL wait) for the duration of Work.
	cls := ctx.CLS()
	savedHi, savedTag := cls.HighPrio, ctx.TraceTag()
	cls.HighPrio = req.HighPriority
	ctx.SetTraceTag(w.s.traceSeq.Add(1))
	gen := ctx.Arm(req.Deadline)
	req.execGen.Store(gen)
	req.execCtx.Store(ctx)
	// Dekker-style re-check: a Cancel that loaded execCtx before the store
	// above couldn't reach this context, so look at the flag again now that
	// the handoff is published.
	if req.Canceled() {
		ctx.CancelGen(gen)
	}
	req.StartedAt = clock.Nanos()
	req.Err = req.Work(ctx)
	req.FinishedAt = clock.Nanos()
	req.execCtx.Store(nil)
	ctx.Disarm()
	ctx.SetTraceTag(savedTag)
	cls.HighPrio = savedHi
	pause := w.pauseNs
	w.pauseNs, w.curClass = savedPause, savedClass
	m := w.s.metrics
	m.Observe(class, metrics.PhaseExec, w.id, req.FinishedAt-req.StartedAt-pause)
	if pause > 0 {
		m.Observe(class, metrics.PhasePauseTotal, w.id, pause)
	}
	if req.EnqueuedAt != 0 {
		m.Observe(class, metrics.PhaseQueueWait, w.id, req.StartedAt-req.EnqueuedAt)
		m.Observe(class, metrics.PhaseTotal, w.id, req.FinishedAt-req.EnqueuedAt)
	}
	if req.HighPriority {
		w.executedHi.Add(1)
	} else {
		w.executedLo.Add(1)
	}
	if req.OnDone != nil {
		req.OnDone(req)
	}
}

// SubmitLow offers a low-priority request to worker wid's queue, stamping
// EnqueuedAt unless the caller already did. It reports false when the queue
// is full.
func (s *Scheduler) SubmitLow(wid int, req *Request) bool {
	req.HighPriority = false
	if req.EnqueuedAt == 0 {
		req.EnqueuedAt = clock.Nanos()
	}
	return s.workers[wid].loQ.Push(req)
}

// SubmitHighBatch implements batched on-demand preemption (§5): requests are
// distributed round-robin, filling each selected worker's high-priority
// queue as far as possible and sending that worker a single user interrupt
// (under PolicyPreempt). Workers above the starvation threshold are skipped.
// It returns the number of requests accepted; the rest should be retried at
// the next arrival interval.
func (s *Scheduler) SubmitHighBatch(reqs []*Request) int {
	now := clock.Nanos()
	accepted := 0
	thr := s.cfg.StarvationThreshold
	remaining := reqs
	for attempts := 0; attempts < len(s.workers) && len(remaining) > 0; attempts++ {
		w := s.workers[s.rr]
		s.rr = (s.rr + 1) % len(s.workers)
		// Decision point 1 (§5): when the worker's starvation level has
		// reached the threshold, push nothing and send no interrupt. The
		// level stays defined between low-priority transactions (T0 is only
		// reset at the next low-priority start), so at threshold 0 a worker
		// that has ever ceded cycles keeps refusing dispatch — the paper's
		// extreme where Q2 reaches maximum throughput and high-priority
		// requests trickle through the regular path only.
		if thr < 1 && w.core.StarvationLevel() >= thr {
			s.starvationSkips.Add(1)
			continue
		}
		pushed := 0
		for len(remaining) > 0 {
			req := remaining[0]
			req.HighPriority = true
			if req.EnqueuedAt == 0 {
				req.EnqueuedAt = now
			}
			if !w.hiQ.Push(req) {
				break // queue full; move to the next worker
			}
			remaining = remaining[1:]
			pushed++
		}
		if pushed > 0 {
			accepted += pushed
			if s.cfg.Policy == PolicyPreempt {
				uintr.SendUIPI(w.core.Receiver().UPID(), uintr.VecPreempt)
				s.interruptsSent.Add(1)
			}
		}
	}
	return accepted
}

// PingAll sends an empty (no enqueued work) preemption interrupt to every
// worker — the fig8 overhead experiment, which measures the cost of the
// interrupt machinery when there is never high-priority work.
func (s *Scheduler) PingAll() {
	for _, w := range s.workers {
		uintr.SendUIPI(w.core.Receiver().UPID(), uintr.VecPreempt)
		s.interruptsSent.Add(1)
	}
}
