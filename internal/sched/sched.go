// Package sched implements PreemptDB's transaction scheduling layer
// (paper §4.1, §5): a scheduling thread dispatches priority-tagged
// transaction requests into per-worker high- and low-priority queues, and
// each worker — a simulated core hosting K transaction contexts (K-1
// low-priority slots plus one preemptive context; default K=2, the paper's
// layout) — executes them under one of the competing policies the paper
// evaluates:
//
//   - Wait: non-preemptive. A worker runs a transaction to completion, then
//     exhausts the high-priority queue before taking the next low-priority
//     transaction.
//   - Cooperative: Wait plus engine-level yield points — after every
//     YieldInterval record accesses the worker checks the high-priority
//     queue and voluntarily swaps to the preemptive context.
//   - CooperativeHandcrafted: Wait plus workload-placed yield points
//     (the workload calls Yield at hand-chosen locations).
//   - Preempt: PreemptDB. The scheduler sends a user interrupt after
//     enqueueing a high-priority batch; the worker's interrupt handler
//     switches to the preemptive context at the next instruction boundary.
//
// Batched on-demand preemption and starvation prevention follow §5: a batch
// is pushed round-robin with one interrupt per touched worker, the scheduler
// skips workers whose starvation level exceeds the threshold, and the
// preemptive context returns the core early when the threshold is crossed
// mid-batch.
//
// With ContextsPerCore > 2 each worker additionally becomes a CoroBase-style
// stall-hiding batch executor: its K-1 low-priority slots each pull requests
// from the queues, and at simulated stall boundaries (YieldStall — B+tree
// node descents, version-chain hops) the running slot rotates the core to
// the next runnable sibling instead of waiting the stall out. Every slot
// stays independently preemptible (the preemptive context always wins and
// hands the core back to the slot it interrupted), cancelable (lifecycle
// descriptors are per-context), and starvation-accounted (per-slot t0/th).
package sched

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"preemptdb/internal/clock"
	"preemptdb/internal/metrics"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/queue"
	"preemptdb/internal/uintr"
)

// MaxContextsPerCore bounds Config.ContextsPerCore (per-slot state arrays
// and rotation scans are sized/paced for small K; the paper's hardware has
// a handful of outstanding-miss slots, not hundreds).
const MaxContextsPerCore = 16

// Policy selects the scheduling discipline.
type Policy uint8

// The scheduling policies the paper compares (§6.1 "Competing Methods").
const (
	PolicyWait Policy = iota
	PolicyCooperative
	PolicyCooperativeHandcrafted
	PolicyPreempt
)

func (p Policy) String() string {
	switch p {
	case PolicyWait:
		return "Wait"
	case PolicyCooperative:
		return "Cooperative"
	case PolicyCooperativeHandcrafted:
		return "Cooperative (Handcrafted)"
	case PolicyPreempt:
		return "PreemptDB"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Request is one transaction request flowing through the scheduler. Its
// lifecycle fields (Deadline, Cancel) form the descriptor the worker arms on
// the executing context, so in-flight cancellation rides the same poll
// instrumentation that makes preemption work.
type Request struct {
	// HighPriority marks the short, latency-sensitive class.
	HighPriority bool
	// Work runs the transaction body on the executing context. Conflict
	// retries are the body's responsibility; the returned error is recorded.
	Work func(ctx *pcontext.Context) error

	// Deadline is the absolute clock.Nanos() instant after which the request
	// is worthless (0 = none). An expired request still queued is shed
	// before execution; a running one is canceled at its next poll.
	Deadline int64

	// TraceID is the transaction's trace identifier, stamped on the executing
	// context so every scheduling and engine event the transaction generates
	// carries it. Zero means "assign one": the worker draws from the
	// scheduler's shared sequence at execution start and writes it back here.
	// Submitters (the DB facade, or a client over the wire) may pre-assign.
	TraceID uint64

	// EnqueuedAt is stamped by the submitter (clock.Nanos); StartedAt and
	// FinishedAt by the executing worker. Scheduling latency is
	// StartedAt-EnqueuedAt; end-to-end latency FinishedAt-EnqueuedAt.
	EnqueuedAt int64
	StartedAt  int64
	FinishedAt int64
	Err        error

	// OnDone, when set, is called after FinishedAt is stamped.
	OnDone func(*Request)

	// canceled is the submitter-side cancel flag; execCtx/execGen identify
	// the context currently running the request so Cancel can reach a
	// transaction already in flight (the generation fences stale cancels).
	canceled atomic.Bool
	execCtx  atomic.Pointer[pcontext.Context]
	execGen  atomic.Uint64
}

// Cancel marks the request canceled. Queued requests are shed before
// execution; a request already running is canceled at its executing
// context's next poll. Safe to call from any goroutine, repeatedly, and at
// any point in the request's life (after completion it is a no-op).
func (r *Request) Cancel() {
	r.canceled.Store(true)
	if ctx := r.execCtx.Load(); ctx != nil {
		ctx.CancelGen(r.execGen.Load())
	}
}

// Canceled reports whether Cancel was called.
func (r *Request) Canceled() bool { return r.canceled.Load() }

// expired reports whether the request's deadline has passed at time now.
func (r *Request) expired(now int64) bool {
	return r.Deadline != 0 && now >= r.Deadline
}

// SchedulingLatency returns StartedAt-EnqueuedAt in nanoseconds.
func (r *Request) SchedulingLatency() int64 { return r.StartedAt - r.EnqueuedAt }

// Latency returns the end-to-end FinishedAt-EnqueuedAt in nanoseconds.
func (r *Request) Latency() int64 { return r.FinishedAt - r.EnqueuedAt }

// Config sizes and parameterizes a Scheduler. Zero values take the paper's
// defaults (§6.1).
type Config struct {
	// Policy is the scheduling discipline. Default PolicyWait.
	Policy Policy
	// Workers is the number of simulated cores. Default 4.
	Workers int
	// HiQueueSize is the per-worker high-priority queue capacity. Default 4.
	HiQueueSize int
	// LoQueueSize is the per-worker low-priority queue capacity. Default 1.
	LoQueueSize int
	// YieldInterval is the record-access count between cooperative yield
	// checks. Default 10000.
	YieldInterval uint64
	// StarvationThreshold is the maximum starvation level L (fraction of a
	// paused low-priority transaction's lifetime spent on high-priority
	// work). Values >= 1 effectively disable prevention; the paper's default
	// is 100. Default 100.
	StarvationThreshold float64
	// MorselQueueSize caps the shared stealable morsel-task queue (parallel
	// analytical sub-requests, see SubmitMorsel). Default 64.
	MorselQueueSize int
	// ContextsPerCore is the number of transaction contexts K each worker
	// core multiplexes: K-1 low-priority slots plus the preemptive context.
	// Default 2 — the paper's layout and the exact pre-K-way code path (no
	// stall hook is installed, so YieldStall boundaries cost two loads).
	// Values above 2 enable stall-boundary rotation among the low slots.
	// Clamped to [2, MaxContextsPerCore].
	ContextsPerCore int
	// StallInterval is the number of simulated stall boundaries (YieldStall
	// calls: node descents, version hops) a low-priority slot passes between
	// rotation attempts when ContextsPerCore > 2. Default 64 — rotating at
	// every boundary would pay a context switch per node access.
	StallInterval uint64
	// Metrics receives the per-phase latency decomposition (queue wait,
	// execution, pauses, resume, end-to-end) and uintr delivery latency.
	// Default: a fresh registry — instrumentation is always on; pass a shared
	// registry to aggregate with the engine's WAL-wait observations.
	Metrics *metrics.Registry
	// TraceCapacity sizes the always-on per-core scheduling-event ring
	// (events retained per core, rounded up to a power of two). Default 4096;
	// negative disables tracing.
	TraceCapacity int
	// TraceIDs, when set, is the shared trace-id sequence requests without a
	// pre-assigned TraceID draw from. A multi-shard deployment passes one
	// counter to every shard's scheduler so trace ids stay globally unique and
	// a cross-shard transaction's events merge by a single id. Default: a
	// fresh per-scheduler counter.
	TraceIDs *atomic.Uint64
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.HiQueueSize == 0 {
		c.HiQueueSize = 4
	}
	if c.LoQueueSize == 0 {
		c.LoQueueSize = 1
	}
	if c.YieldInterval == 0 {
		c.YieldInterval = 10000
	}
	if c.StarvationThreshold == 0 {
		c.StarvationThreshold = 100
	}
	if c.MorselQueueSize == 0 {
		c.MorselQueueSize = 64
	}
	if c.ContextsPerCore < 2 {
		c.ContextsPerCore = 2
	}
	if c.ContextsPerCore > MaxContextsPerCore {
		c.ContextsPerCore = MaxContextsPerCore
	}
	if c.StallInterval == 0 {
		c.StallInterval = 64
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.TraceCapacity == 0 {
		c.TraceCapacity = 4096
	}
	if c.TraceIDs == nil {
		c.TraceIDs = new(atomic.Uint64)
	}
	return c
}

// Scheduler owns the workers and implements the dispatch side of the
// policies. One goroutine (the "scheduling thread") should perform all
// Submit calls; workers consume concurrently.
type Scheduler struct {
	cfg     Config
	workers []*Worker
	rr      int // round-robin cursor for high-priority dispatch

	// morselQ is the shared stealable work queue for parallel analytical
	// sub-requests: any worker with nothing else to do pops a task and helps
	// a neighbor's query. MPMC because every worker consumes and any context
	// may produce.
	morselQ *queue.MPMC[func(*pcontext.Context)]

	interruptsSent  atomic.Uint64
	starvationSkips atomic.Uint64
	shedExpired     atomic.Uint64
	shedCanceled    atomic.Uint64
	morselsStolen   atomic.Uint64
	started         bool

	// metrics is the shared phase-latency registry (never nil after New).
	metrics *metrics.Registry
	// traceSeq issues the per-request trace tags stamped on the executing
	// context so trace events can be attributed to a transaction. Shared
	// across schedulers when Config.TraceIDs was supplied.
	traceSeq *atomic.Uint64
}

// Worker is one simulated core with its K transaction contexts and queues.
type Worker struct {
	id   int
	s    *Scheduler
	core *pcontext.Core
	// hiQ is multi-consumer: the low-priority slots and the preemptive
	// context all pop from it (never truly concurrently, but across the
	// park/unpark handoff).
	hiQ *queue.MPMC[*Request]
	loQ *queue.SPSC[*Request]

	executedHi atomic.Uint64
	executedLo atomic.Uint64

	// slots[i] is the request accounting for context i — one entry per
	// context, so a request on any slot (or the preemptive context) never
	// clobbers a paused sibling's state. Plain fields: every access happens
	// on the context that currently holds the core, and core ownership only
	// transfers through park/unpark handoffs, which order them (the same
	// argument the two-context code made for its single shared pair).
	slots []slotState

	// pubs[i] is slot i's seqlock-published mirror for live introspection:
	// the owning context writes it at state transitions (execute start/end,
	// stall park/resume, preempt pause/resume); any goroutine may read it
	// through SlotTable without touching the plain slotState fields.
	pubs []slotPub

	// resumeTo is the context the preemptive loop hands the core back to:
	// the last low slot it interrupted (via handler or cooperative yield).
	// Written by the interrupted context just before switching away, read by
	// the preemptive context after the handoff.
	resumeTo *pcontext.Context
}

// slotState is one context's request accounting (the per-slot generalization
// of the former per-worker pauseNs/resumeAt/curClass triple).
type slotState struct {
	pauseNs  int64         // preempted-pause nanoseconds accumulated so far
	resumeAt int64         // stamped by the preemptive loop just before handing the core back
	curClass metrics.Class // class of the request the accumulators belong to

	stallNs    int64  // stall-parked (interleaved-out) nanoseconds accumulated so far
	stallStart int64  // non-zero while the slot is parked at a stall boundary
	curTag     uint64 // trace id of the in-flight request (for pause/resume republish)

	// stallParked marks a slot parked mid-transaction at a YieldStall
	// boundary: it is runnable and waiting for a sibling to rotate the core
	// back. idle marks a slot parked with no request in flight: handing it
	// the core makes it pull new work from the queues (that is how the
	// dispatcher fills a worker's K-1 slots). A slot with neither flag is
	// either running or preempt-parked (owed a resume by the preemptive
	// loop) and must not be switched to.
	stallParked bool
	idle        bool
}

// Published slot states (SlotInfo.State).
const (
	SlotIdle        = "idle"         // parked with no request in flight
	SlotRunning     = "running"      // executing a request (or holding the core)
	SlotStallParked = "stall-parked" // parked mid-transaction at a stall boundary
	SlotPreempted   = "preempted"    // paused mid-transaction by the preemptive context
)

// slotPub is one slot's introspection mirror, written only by the context
// that owns the slot and read by SlotTable under the same seqlock discipline
// as the trace ring: the writer bumps seq odd, stores the payload, bumps seq
// even; a reader retries until it sees the same even seq before and after the
// payload loads. All fields are atomics, so concurrent sampling is race-clean
// as well as tear-free.
type slotPub struct {
	seq   atomic.Uint32
	state atomic.Uint32 // 0 idle, 1 running, 2 stall-parked, 3 preempted
	class atomic.Uint32 // metrics.Class of the in-flight request
	tag   atomic.Uint64 // trace id of the in-flight request (0 when idle)
}

const (
	pubIdle uint32 = iota
	pubRunning
	pubStallParked
	pubPreempted
)

// publish writes slot id's mirror. Called only from the owning context.
func (w *Worker) publish(id int, state uint32, class metrics.Class, tag uint64) {
	p := &w.pubs[id]
	p.seq.Add(1) // odd: write in progress
	p.state.Store(state)
	p.class.Store(uint32(class))
	p.tag.Store(tag)
	p.seq.Add(1) // even: stable
}

// SlotInfo is one context slot's sampled state.
type SlotInfo struct {
	Context    int     `json:"context"`
	Preemptive bool    `json:"preemptive"`
	State      string  `json:"state"`
	Class      string  `json:"class,omitempty"` // "hi"/"lo" while occupied
	TraceTag   uint64  `json:"trace_tag,omitempty"`
	Starvation float64 `json:"starvation"`
}

// WorkerState is one worker core's sampled slot table and queue depths.
type WorkerState struct {
	Worker     int        `json:"worker"`
	HiQueueLen int        `json:"hi_queue_len"`
	HiQueueCap int        `json:"hi_queue_cap"`
	LoQueueLen int        `json:"lo_queue_len"`
	LoQueueCap int        `json:"lo_queue_cap"`
	Slots      []SlotInfo `json:"slots"`
}

// SlotTable samples the worker's per-context slot table via the seqlock
// mirrors. Safe from any goroutine while the scheduler runs; each slot's
// fields are mutually consistent (never torn across a transition).
func (w *Worker) SlotTable() []SlotInfo {
	out := make([]SlotInfo, len(w.pubs))
	for i := range w.pubs {
		p := &w.pubs[i]
		var state, class uint32
		var tag uint64
		for attempt := 0; ; attempt++ {
			s1 := p.seq.Load()
			if s1&1 == 0 {
				state = p.state.Load()
				class = p.class.Load()
				tag = p.tag.Load()
				if p.seq.Load() == s1 {
					break
				}
			}
			if attempt >= 4096 {
				// A writer storm outlasting 4096 retries of a 4-store window
				// cannot happen in practice; give up with the idle zero value
				// rather than spin forever.
				state, class, tag = pubIdle, 0, 0
				break
			}
			if attempt%64 == 63 {
				runtime.Gosched()
			}
		}
		info := SlotInfo{
			Context:    i,
			Preemptive: i == len(w.pubs)-1,
			TraceTag:   tag,
		}
		switch state {
		case pubRunning:
			info.State = SlotRunning
		case pubStallParked:
			info.State = SlotStallParked
		case pubPreempted:
			info.State = SlotPreempted
		default:
			info.State = SlotIdle
		}
		if state != pubIdle {
			if metrics.Class(class) == metrics.ClassHi {
				info.Class = "hi"
			} else {
				info.Class = "lo"
			}
		}
		if ctx := w.core.Context(i); ctx != nil {
			info.Starvation = ctx.StarvationLevel()
		}
		out[i] = info
	}
	return out
}

// State samples the worker's slot table plus queue depths.
func (w *Worker) State() WorkerState {
	return WorkerState{
		Worker:     w.id,
		HiQueueLen: w.hiQ.Len(),
		HiQueueCap: w.hiQ.Cap(),
		LoQueueLen: w.loQ.Len(),
		LoQueueCap: w.loQ.Cap(),
		Slots:      w.SlotTable(),
	}
}

// State samples every worker's slot table and queue depths — the live
// scheduler introspection surface behind /debug/sched. Safe concurrently
// with execution; zero allocations on any hot path (sampling allocates, the
// publishing side does not).
func (s *Scheduler) State() []WorkerState {
	out := make([]WorkerState, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.State()
	}
	return out
}

// ID returns the worker index.
func (w *Worker) ID() int { return w.id }

// Core exposes the worker's simulated core.
func (w *Worker) Core() *pcontext.Core { return w.core }

// ExecutedHigh returns the number of completed high-priority requests.
func (w *Worker) ExecutedHigh() uint64 { return w.executedHi.Load() }

// ExecutedLow returns the number of completed low-priority requests.
func (w *Worker) ExecutedLow() uint64 { return w.executedLo.Load() }

// New builds a scheduler; call Start to launch the workers.
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:      cfg,
		morselQ:  queue.NewMPMC[func(*pcontext.Context)](cfg.MorselQueueSize),
		metrics:  cfg.Metrics,
		traceSeq: cfg.TraceIDs,
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &Worker{
			id:    i,
			s:     s,
			core:  pcontext.NewCore(i, cfg.ContextsPerCore),
			hiQ:   queue.NewMPMC[*Request](cfg.HiQueueSize),
			loQ:   queue.NewSPSC[*Request](cfg.LoQueueSize),
			slots: make([]slotState, cfg.ContextsPerCore),
			pubs:  make([]slotPub, cfg.ContextsPerCore),
		}
		for si := range w.slots {
			w.slots[si].idle = true // every slot starts parked with no request
		}
		w.core.SetUserData(w)
		if cfg.TraceCapacity > 0 {
			w.core.SetTracer(pcontext.NewTracer(cfg.TraceCapacity))
		}
		id := i
		w.core.SetDeliveryObserver(func(ns int64) { s.metrics.ObserveDelivery(id, ns) })
		s.workers = append(s.workers, w)
	}
	return s
}

// Metrics returns the scheduler's phase-latency registry (never nil).
func (s *Scheduler) Metrics() *metrics.Registry { return s.metrics }

// TraceSnapshot collects every worker's scheduling-event trace. Safe while
// the scheduler runs; see Tracer.Snapshot for the staleness contract.
func (s *Scheduler) TraceSnapshot() []pcontext.CoreEvents {
	var out []pcontext.CoreEvents
	for _, w := range s.workers {
		if tr := w.core.Tracer(); tr != nil {
			out = append(out, pcontext.CoreEvents{Core: w.id, Events: tr.Snapshot()})
		}
	}
	return out
}

// Config returns the effective configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Workers returns the worker set.
func (s *Scheduler) Workers() []*Worker { return s.workers }

// InterruptsSent returns the number of user interrupts issued.
func (s *Scheduler) InterruptsSent() uint64 { return s.interruptsSent.Load() }

// StarvationSkips returns how many scheduler-side dispatches were withheld
// because a worker's starvation level exceeded the threshold.
func (s *Scheduler) StarvationSkips() uint64 { return s.starvationSkips.Load() }

// ShedExpired returns how many queued requests were dropped at dispatch
// because their deadline had already passed.
func (s *Scheduler) ShedExpired() uint64 { return s.shedExpired.Load() }

// ShedCanceled returns how many queued requests were dropped at dispatch
// because their submitter canceled them before they ran.
func (s *Scheduler) ShedCanceled() uint64 { return s.shedCanceled.Load() }

// MorselsStolen returns how many morsel helper tasks idle workers picked up
// from the shared queue.
func (s *Scheduler) MorselsStolen() uint64 { return s.morselsStolen.Load() }

// StallYields returns how many times a low-priority slot rotated the core
// away at a simulated stall boundary (K-way interleaving; zero when
// ContextsPerCore is 2).
func (s *Scheduler) StallYields() uint64 { return s.metrics.StallYields() }

// InterleaveSwitches returns how many switches resumed a stall-parked
// transaction (from a rotating sibling or an idle slot handing over).
func (s *Scheduler) InterleaveSwitches() uint64 { return s.metrics.InterleaveSwitches() }

// SubmitMorsel offers one stealable morsel helper task to the shared queue.
// Unlike SubmitLow/SubmitHighBatch it is safe from any goroutine (the queue
// is MPMC), because analytical transactions spawn helpers from whichever
// worker context they run on. A worker claims a task only when both its
// priority queues are empty — morsels are strictly lower priority than every
// queued request — and runs it with the starvation meter armed, so a
// high-priority burst preempts a stolen morsel exactly like any other
// low-priority transaction. Returns false when the queue is full; the caller
// simply runs more morsels itself.
func (s *Scheduler) SubmitMorsel(fn func(ctx *pcontext.Context)) bool {
	if fn == nil {
		return false
	}
	return s.morselQ.Push(fn)
}

// MorselSpawner returns a spawn function that dispatches morsel helper tasks
// to the scheduler owning ctx's core, or nil when ctx is detached (no
// scheduler — callers then run their morsels inline). The signature matches
// engine.ParallelScanConfig.Spawn.
func MorselSpawner(ctx *pcontext.Context) func(fn func(ctx *pcontext.Context)) bool {
	if ctx == nil || ctx.Core() == nil {
		return nil
	}
	w, ok := ctx.Core().UserData().(*Worker)
	if !ok {
		return nil
	}
	return w.s.SubmitMorsel
}

// Start launches every worker's contexts and installs the policy hooks.
func (s *Scheduler) Start() {
	if s.started {
		panic("sched: Start called twice")
	}
	s.started = true
	for _, w := range s.workers {
		w.install()
		// Contexts 0..K-2 are interchangeable low-priority slots; the last
		// context is the distinct preemptive one (always wins, never rotates).
		entries := make([]func(*pcontext.Context), w.core.NumContexts())
		for i := 0; i < len(entries)-1; i++ {
			entries[i] = w.slotLoop
		}
		entries[len(entries)-1] = w.preemptiveLoop
		w.core.Start(entries)
	}
}

// Stop shuts every worker down and waits for their contexts to exit.
// Requests still queued are dropped.
func (s *Scheduler) Stop() {
	for _, w := range s.workers {
		// Wake the core via a shutdown vector in case it sits in a long
		// transaction polling only for interrupts.
		uintr.SendUIPI(w.core.Receiver().UPID(), uintr.VecShutdown)
	}
	for _, w := range s.workers {
		w.core.Shutdown()
	}
}

// lowSlots returns the number of low-priority context slots (K-1; the last
// context is the preemptive one).
func (w *Worker) lowSlots() int { return w.core.NumContexts() - 1 }

// preemptiveCtx returns the worker's distinct preemptive context.
func (w *Worker) preemptiveCtx() *pcontext.Context {
	return w.core.Context(w.core.NumContexts() - 1)
}

// install wires the policy-specific handler/hook on the worker's core.
func (w *Worker) install() {
	if w.lowSlots() > 1 {
		// K-way multiplexing: rotate among the low slots at simulated stall
		// boundaries, under every policy (interleaving is orthogonal to how
		// high-priority work preempts).
		w.core.SetStallHook(w.stallPoint)
	}
	switch w.s.cfg.Policy {
	case PolicyPreempt:
		w.core.SetHandler(func(cur *pcontext.Context, vectors uint64) {
			if !uintr.Has(vectors, uintr.VecPreempt) {
				return // e.g. shutdown ping
			}
			w.handlePreempt(cur)
		})
	case PolicyCooperative:
		interval := w.s.cfg.YieldInterval
		w.core.SetPollHook(func(cur *pcontext.Context) {
			cls := cur.CLS()
			if cls.Accesses-cls.LastYield < interval {
				return
			}
			cls.LastYield = cls.Accesses
			w.yieldPoint(cur)
		})
	default:
		// Wait and CooperativeHandcrafted install nothing; the latter's
		// yields come from workload calls to Yield.
	}
}

// handlePreempt is the user-interrupt handler body: switch the interrupted
// low slot to the preemptive context if there is work and no reason to hold
// back. It runs with interrupts disabled (UIF clear), like a hardware
// handler.
func (w *Worker) handlePreempt(cur *pcontext.Context) {
	if w.core.Done() {
		return
	}
	hp := w.preemptiveCtx()
	if cur == hp {
		// The paper does not interrupt an in-progress high-priority
		// transaction; drop the interrupt (the queue will be drained by the
		// already-running preemptive loop).
		return
	}
	if w.hiQ.Empty() {
		return // spurious or raced: nothing to do (fig8's overhead path)
	}
	w.resumeTo = cur
	st := &w.slots[cur.ID()]
	w.publish(cur.ID(), pubPreempted, st.curClass, st.curTag)
	pauseStart := clock.Nanos()
	cur.SwitchTo(hp)
	w.notePauseEnd(cur, pauseStart)
}

// notePauseEnd runs on the interrupted context the instant it holds the core
// again after a preemption: it accumulates the pause into its slot's request
// total and records the per-pause and resume-latency phases.
func (w *Worker) notePauseEnd(cur *pcontext.Context, pauseStart int64) {
	st := &w.slots[cur.ID()]
	w.publish(cur.ID(), pubRunning, st.curClass, st.curTag)
	now := clock.Nanos()
	pause := now - pauseStart
	st.pauseNs += pause
	m := w.s.metrics
	m.Observe(st.curClass, metrics.PhasePause, w.id, pause)
	if st.resumeAt != 0 {
		m.Observe(st.curClass, metrics.PhaseResume, w.id, now-st.resumeAt)
		st.resumeAt = 0
	}
}

// yieldPoint implements the cooperative check: if high-priority work is
// queued, voluntarily swap to the preemptive context (which drains the queue
// and swaps back).
func (w *Worker) yieldPoint(cur *pcontext.Context) {
	hp := w.preemptiveCtx()
	if w.core.Done() || cur == hp {
		return
	}
	if w.hiQ.Empty() {
		return
	}
	w.resumeTo = cur
	st := &w.slots[cur.ID()]
	w.publish(cur.ID(), pubPreempted, st.curClass, st.curTag)
	pauseStart := clock.Nanos()
	cur.SwapContext(hp)
	w.notePauseEnd(cur, pauseStart)
}

// stallPoint is the stall hook (installed when ContextsPerCore > 2): every
// StallInterval simulated stall boundaries it rotates the core from the
// stalling low slot to the next runnable sibling — a slot parked
// mid-transaction at its own stall boundary, or an idle slot when
// low-priority work is queued (that is how the batch dispatcher keeps K-1
// slots filled). The stalling transaction parks and resumes when a sibling
// rotates back; the time parked is recorded as its stall_overlap phase, not
// its execution time.
func (w *Worker) stallPoint(cur *pcontext.Context) {
	id := cur.ID()
	if w.core.Done() || id >= w.lowSlots() {
		return // the preemptive context never rotates; hi p99 stays flat in K
	}
	cls := cur.CLS()
	if cls.HighPrio {
		// A low slot draining the hi queue between transactions is running
		// high-priority work in place: rotating away would park that request
		// behind batch work — a priority inversion. Hi-class occupancy runs
		// straight through its stall boundaries.
		return
	}
	if cls.Stalls-cls.LastStallYield < w.s.cfg.StallInterval {
		return
	}
	cls.LastStallYield = cls.Stalls
	target := w.rotationTarget(id)
	if target == nil {
		return // no runnable sibling: keep running (the "prefetch hit" path)
	}
	st := &w.slots[id]
	st.stallParked = true
	st.stallStart = clock.Nanos()
	w.publish(id, pubStallParked, st.curClass, st.curTag)
	w.s.metrics.IncStallYield()
	if w.slots[target.ID()].stallParked {
		w.s.metrics.IncInterleaveSwitch()
	}
	cur.SwapContext(target)
	// Resumed: a sibling rotated back (or handed over before going idle).
	st.stallParked = false
	st.stallNs += clock.Nanos() - st.stallStart
	st.stallStart = 0
	w.publish(id, pubRunning, st.curClass, st.curTag)
}

// rotationTarget picks the next runnable low slot after `from` in ring
// order: a stall-parked sibling resumes its in-flight transaction; an idle
// sibling is chosen only when the low-priority queue has work for it to
// pull. Returns nil when no sibling is runnable.
func (w *Worker) rotationTarget(from int) *pcontext.Context {
	n := w.lowSlots()
	wantIdle := !w.loQ.Empty()
	for i := 1; i < n; i++ {
		j := from + i
		if j >= n {
			j -= n
		}
		st := &w.slots[j]
		if st.stallParked || (wantIdle && st.idle) {
			return w.core.Context(j)
		}
	}
	return nil
}

// stallParkedSibling returns the next low slot after `from` parked at a
// stall boundary, or nil. Idle slots use it to hand the core to in-flight
// work before backing off.
func (w *Worker) stallParkedSibling(from int) *pcontext.Context {
	n := w.lowSlots()
	for i := 1; i < n; i++ {
		j := from + i
		if j >= n {
			j -= n
		}
		if w.slots[j].stallParked {
			return w.core.Context(j)
		}
	}
	return nil
}

// Yield is the workload-visible yield point for handcrafted cooperative
// scheduling (paper §6.3's Cooperative (Handcrafted)): the workload calls it
// at hand-chosen locations, e.g. every N nested query blocks of Q2. It is a
// no-op for contexts not owned by a scheduler worker.
func Yield(ctx *pcontext.Context) {
	if ctx == nil || ctx.Core() == nil {
		return
	}
	w, ok := ctx.Core().UserData().(*Worker)
	if !ok {
		return
	}
	w.yieldPoint(ctx)
}

// slotLoop is the body of every low-priority context slot: the regular
// scheduling path, generalized from the two-context regular loop. It prefers
// the high-priority queue between transactions (all policies do, per §6.1's
// Wait definition), then runs low-priority transactions with starvation
// accounting armed. With nothing queued it hands the core to a stall-parked
// sibling before backing off, so an idle slot never sits on core time an
// interleaved transaction could use.
func (w *Worker) slotLoop(ctx *pcontext.Context) {
	st := &w.slots[ctx.ID()]
	idle := 0
	ranLow := false
	for !w.core.Done() {
		// §6.1: "Each worker thread starts with the low-priority transaction
		// queue to run Q2" and only then prefers the high-priority queue
		// between transactions. Starting low also arms the starvation meter
		// before any admission decision is taken against this worker.
		if !ranLow {
			if req, ok := w.loQ.Pop(); ok {
				st.idle = false
				w.runLow(ctx, req)
				st.idle = true
				ranLow = true
				idle = 0
				continue
			}
		}
		if req, ok := w.hiQ.Pop(); ok {
			st.idle = false
			w.execute(ctx, req)
			st.idle = true
			idle = 0
			continue
		}
		if req, ok := w.loQ.Pop(); ok {
			st.idle = false
			w.runLow(ctx, req)
			st.idle = true
			ranLow = true
			idle = 0
			continue
		}
		// Both priority queues empty: help a neighbor's parallel scan before
		// going idle. Morsel tasks run with the starvation meter armed, so a
		// high-priority burst preempts the stolen work like any low-priority
		// transaction.
		if fn, ok := w.s.morselQ.Pop(); ok {
			st.idle = false
			w.runMorsel(ctx, fn)
			st.idle = true
			idle = 0
			continue
		}
		// Nothing queued for this slot: resume a sibling parked mid-flight at
		// a stall boundary rather than spinning while its transaction waits.
		if target := w.stallParkedSibling(ctx.ID()); target != nil {
			w.s.metrics.IncInterleaveSwitch()
			ctx.SwapContext(target)
			idle = 0
			continue
		}
		// Idle: back off so other simulated cores get real CPU time.
		idle++
		if idle < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(10 * time.Microsecond)
		}
	}
}

// preemptiveLoop is the last context's body: it wakes when switched to,
// drains the high-priority queue (stopping early if the starvation threshold
// is crossed, §5), and actively swaps the core back to the low slot it
// interrupted.
func (w *Worker) preemptiveLoop(ctx *pcontext.Context) {
	thr := w.s.cfg.StarvationThreshold
	for !w.core.Done() {
		for {
			// >= so a threshold of 0 admits nothing on the preemptive
			// context (fig12's extreme point: those requests drain through
			// the regular path instead).
			if thr < 1 && w.core.StarvationLevel() >= thr {
				break // return the core to the starved low-priority txn
			}
			req, ok := w.hiQ.Pop()
			if !ok {
				break
			}
			start := clock.Nanos()
			w.execute(ctx, req)
			w.core.AddHighPrioNanos(clock.Nanos() - start)
		}
		back := w.resumeTo
		if back == nil {
			back = w.core.Context(0) // woken before any interrupt (shutdown ping)
		}
		// Stamp the hand-back decision instant so the paused slot can report
		// its resume latency once it actually runs.
		w.slots[back.ID()].resumeAt = clock.Nanos()
		ctx.SwapContext(back)
	}
}

// runLow executes a low-priority request with the executing slot's
// starvation accounting armed: the meter resets at transaction start and
// freezes its final level at the end (paper §5, per-slot).
func (w *Worker) runLow(ctx *pcontext.Context, req *Request) {
	ctx.BeginLowPrio()
	w.execute(ctx, req)
	ctx.EndLowPrio()
}

// runMorsel executes one stolen morsel helper task under low-priority
// starvation accounting. The task arms/disarms its own lifecycle (the engine
// helper does this), so the scheduler only brackets the starvation meter.
func (w *Worker) runMorsel(ctx *pcontext.Context, fn func(*pcontext.Context)) {
	w.s.morselsStolen.Add(1)
	st := &w.slots[ctx.ID()]
	savedPause, savedClass, savedStall, savedTag := st.pauseNs, st.curClass, st.stallNs, st.curTag
	st.pauseNs, st.curClass, st.stallNs, st.curTag = 0, metrics.ClassLo, 0, ctx.TraceTag()
	w.publish(ctx.ID(), pubRunning, metrics.ClassLo, st.curTag)
	ctx.BeginLowPrio()
	fn(ctx)
	ctx.EndLowPrio()
	st.pauseNs, st.curClass, st.stallNs, st.curTag = savedPause, savedClass, savedStall, savedTag
	w.publish(ctx.ID(), pubIdle, 0, 0)
}

// boolByte packs a bool into a span detail byte.
func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// shed completes a request without running it — the dispatch-side drop for
// requests that were canceled, or whose deadline expired, while still queued.
// Executing such a request would only burn core time its submitter has
// already written off. Returns true when the request was shed.
func (w *Worker) shed(req *Request) bool {
	now := clock.Nanos()
	switch {
	case req.Canceled():
		req.Err = pcontext.ErrCanceled
		w.s.shedCanceled.Add(1)
	case req.expired(now):
		req.Err = pcontext.ErrDeadlineExceeded
		w.s.shedExpired.Add(1)
	default:
		return false
	}
	req.StartedAt = now
	req.FinishedAt = now
	if req.OnDone != nil {
		req.OnDone(req)
	}
	return true
}

// execute runs one request, stamping its latency fields. The request's
// lifecycle descriptor is armed on the executing context for the duration of
// Work, so Poll observes the deadline and cross-goroutine Cancel at
// instruction granularity.
func (w *Worker) execute(ctx *pcontext.Context, req *Request) {
	if w.shed(req) {
		return
	}
	class := metrics.ClassLo
	if req.HighPriority {
		class = metrics.ClassHi
	}
	// Fresh pause/stall accumulators for this request in the executing
	// context's own slot; save/restore so nested occupancy of the same slot
	// (the preemptive context draining several requests back to back, a
	// morsel task) never bleeds accounting across requests. Cross-slot
	// isolation needs no saving at all — each context indexes its own entry.
	st := &w.slots[ctx.ID()]
	savedPause, savedClass, savedStall := st.pauseNs, st.curClass, st.stallNs
	st.pauseNs, st.curClass, st.stallNs = 0, class, 0
	// Annotate trace events and engine-side observations (the commit path
	// reads CLS.HighPrio to classify its WAL wait) for the duration of Work.
	cls := ctx.CLS()
	savedHi, savedTag := cls.HighPrio, ctx.TraceTag()
	cls.HighPrio = req.HighPriority
	tag := req.TraceID
	if tag == 0 {
		tag = w.s.traceSeq.Add(1)
		req.TraceID = tag
	}
	ctx.SetTraceTag(tag)
	st.curTag = tag
	w.publish(ctx.ID(), pubRunning, class, tag)
	gen := ctx.Arm(req.Deadline)
	req.execGen.Store(gen)
	req.execCtx.Store(ctx)
	// Dekker-style re-check: a Cancel that loaded execCtx before the store
	// above couldn't reach this context, so look at the flag again now that
	// the handoff is published.
	if req.Canceled() {
		ctx.CancelGen(gen)
	}
	req.StartedAt = clock.Nanos()
	if req.EnqueuedAt != 0 {
		ctx.TraceEvent(pcontext.EvTxnStart, pcontext.SpanAux(req.StartedAt-req.EnqueuedAt, boolByte(req.HighPriority)))
	} else {
		ctx.TraceEvent(pcontext.EvTxnStart, pcontext.SpanAux(0, boolByte(req.HighPriority)))
	}
	req.Err = req.Work(ctx)
	req.FinishedAt = clock.Nanos()
	ctx.TraceEvent(pcontext.EvTxnEnd, pcontext.SpanAux(req.FinishedAt-req.StartedAt, boolByte(req.Err != nil)))
	req.execCtx.Store(nil)
	ctx.Disarm()
	ctx.SetTraceTag(savedTag)
	cls.HighPrio = savedHi
	pause, stall := st.pauseNs, st.stallNs
	st.pauseNs, st.curClass, st.stallNs = savedPause, savedClass, savedStall
	st.curTag = savedTag
	w.publish(ctx.ID(), pubIdle, 0, 0)
	m := w.s.metrics
	m.Observe(class, metrics.PhaseExec, w.id, req.FinishedAt-req.StartedAt-pause-stall)
	if pause > 0 {
		m.Observe(class, metrics.PhasePauseTotal, w.id, pause)
	}
	if stall > 0 {
		m.Observe(class, metrics.PhaseStallOverlap, w.id, stall)
	}
	if req.EnqueuedAt != 0 {
		m.Observe(class, metrics.PhaseQueueWait, w.id, req.StartedAt-req.EnqueuedAt)
		m.Observe(class, metrics.PhaseTotal, w.id, req.FinishedAt-req.EnqueuedAt)
	}
	if req.HighPriority {
		w.executedHi.Add(1)
	} else {
		w.executedLo.Add(1)
	}
	if req.OnDone != nil {
		req.OnDone(req)
	}
}

// SubmitLow offers a low-priority request to worker wid's queue, stamping
// EnqueuedAt unless the caller already did. It reports false when the queue
// is full.
func (s *Scheduler) SubmitLow(wid int, req *Request) bool {
	req.HighPriority = false
	if req.EnqueuedAt == 0 {
		req.EnqueuedAt = clock.Nanos()
	}
	return s.workers[wid].loQ.Push(req)
}

// SubmitHighBatch implements batched on-demand preemption (§5): requests are
// distributed round-robin, filling each selected worker's high-priority
// queue as far as possible and sending that worker a single user interrupt
// (under PolicyPreempt). Workers above the starvation threshold are skipped.
// It returns the number of requests accepted; the rest should be retried at
// the next arrival interval.
func (s *Scheduler) SubmitHighBatch(reqs []*Request) int {
	now := clock.Nanos()
	accepted := 0
	thr := s.cfg.StarvationThreshold
	remaining := reqs
	for attempts := 0; attempts < len(s.workers) && len(remaining) > 0; attempts++ {
		w := s.workers[s.rr]
		s.rr = (s.rr + 1) % len(s.workers)
		// Decision point 1 (§5): when the worker's starvation level has
		// reached the threshold, push nothing and send no interrupt. The
		// level stays defined between low-priority transactions (T0 is only
		// reset at the next low-priority start), so at threshold 0 a worker
		// that has ever ceded cycles keeps refusing dispatch — the paper's
		// extreme where Q2 reaches maximum throughput and high-priority
		// requests trickle through the regular path only.
		if thr < 1 && w.core.StarvationLevel() >= thr {
			s.starvationSkips.Add(1)
			continue
		}
		pushed := 0
		for len(remaining) > 0 {
			req := remaining[0]
			req.HighPriority = true
			if req.EnqueuedAt == 0 {
				req.EnqueuedAt = now
			}
			if !w.hiQ.Push(req) {
				break // queue full; move to the next worker
			}
			remaining = remaining[1:]
			pushed++
		}
		if pushed > 0 {
			accepted += pushed
			if s.cfg.Policy == PolicyPreempt {
				uintr.SendUIPI(w.core.Receiver().UPID(), uintr.VecPreempt)
				s.interruptsSent.Add(1)
			}
		}
	}
	return accepted
}

// PingAll sends an empty (no enqueued work) preemption interrupt to every
// worker — the fig8 overhead experiment, which measures the cost of the
// interrupt machinery when there is never high-priority work.
func (s *Scheduler) PingAll() {
	for _, w := range s.workers {
		uintr.SendUIPI(w.core.Receiver().UPID(), uintr.VecPreempt)
		s.interruptsSent.Add(1)
	}
}
