package sched

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"preemptdb/internal/clock"
	"preemptdb/internal/pcontext"
)

// spinFor busily executes poll loops on ctx for roughly d, simulating a
// long-running transaction with instruction-level preemption points.
func spinFor(ctx *pcontext.Context, d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		for i := 0; i < 64; i++ {
			ctx.Poll()
		}
	}
}

func waitFor(t *testing.T, cond func() bool, timeout time.Duration, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatal(msg)
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		PolicyWait:                   "Wait",
		PolicyCooperative:            "Cooperative",
		PolicyCooperativeHandcrafted: "Cooperative (Handcrafted)",
		PolicyPreempt:                "PreemptDB",
	} {
		if p.String() != want {
			t.Errorf("%d = %q, want %q", p, p.String(), want)
		}
	}
	if Policy(42).String() == "" {
		t.Error("unknown policy must format")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Workers != 4 || c.HiQueueSize != 4 || c.LoQueueSize != 1 ||
		c.YieldInterval != 10000 || c.StarvationThreshold != 100 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestWaitPolicyRunsBothPriorities(t *testing.T) {
	s := New(Config{Policy: PolicyWait, Workers: 1})
	s.Start()
	defer s.Stop()

	var hi, lo atomic.Int64
	done := make(chan struct{}, 2)
	s.SubmitLow(0, &Request{Work: func(ctx *pcontext.Context) error {
		lo.Add(1)
		done <- struct{}{}
		return nil
	}})
	s.SubmitHighBatch([]*Request{{Work: func(ctx *pcontext.Context) error {
		hi.Add(1)
		done <- struct{}{}
		return nil
	}}})
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("requests not executed")
		}
	}
	if hi.Load() != 1 || lo.Load() != 1 {
		t.Fatalf("hi=%d lo=%d", hi.Load(), lo.Load())
	}
	w := s.Workers()[0]
	if w.ExecutedHigh() != 1 || w.ExecutedLow() != 1 {
		t.Fatalf("worker counters: hi=%d lo=%d", w.ExecutedHigh(), w.ExecutedLow())
	}
}

func TestWaitPolicyHighWaitsForLong(t *testing.T) {
	// Under Wait, a high-priority request submitted mid-long-transaction
	// must not start until the long transaction finishes.
	s := New(Config{Policy: PolicyWait, Workers: 1})
	s.Start()
	defer s.Stop()

	var longDone atomic.Int64
	loFinished := make(chan struct{})
	hiDone := make(chan *Request, 1)
	s.SubmitLow(0, &Request{Work: func(ctx *pcontext.Context) error {
		spinFor(ctx, 50*time.Millisecond)
		longDone.Store(clock.Nanos())
		close(loFinished)
		return nil
	}})
	time.Sleep(5 * time.Millisecond) // ensure the long txn is running
	req := &Request{Work: func(ctx *pcontext.Context) error { return nil },
		OnDone: func(r *Request) { hiDone <- r }}
	s.SubmitHighBatch([]*Request{req})

	select {
	case r := <-hiDone:
		<-loFinished
		if r.StartedAt < longDone.Load() {
			t.Fatal("Wait policy started high-priority before long txn ended")
		}
		if r.SchedulingLatency() < int64(10*time.Millisecond) {
			t.Fatalf("scheduling latency %v suspiciously low for Wait", time.Duration(r.SchedulingLatency()))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("high-priority request starved")
	}
}

func TestPreemptPolicyInterruptsLong(t *testing.T) {
	s := New(Config{Policy: PolicyPreempt, Workers: 1})
	s.Start()
	defer s.Stop()

	loDone := make(chan struct{})
	hiDone := make(chan *Request, 1)
	s.SubmitLow(0, &Request{Work: func(ctx *pcontext.Context) error {
		spinFor(ctx, 100*time.Millisecond)
		close(loDone)
		return nil
	}})
	time.Sleep(5 * time.Millisecond)
	req := &Request{Work: func(ctx *pcontext.Context) error { return nil },
		OnDone: func(r *Request) { hiDone <- r }}
	s.SubmitHighBatch([]*Request{req})

	select {
	case r := <-hiDone:
		select {
		case <-loDone:
			t.Fatal("high-priority did not preempt: long txn finished first")
		default:
		}
		if lat := r.SchedulingLatency(); lat > int64(20*time.Millisecond) {
			t.Fatalf("preemption scheduling latency %v too high", time.Duration(lat))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("high-priority request not executed")
	}
	<-loDone // long txn must still complete (paused, not aborted)
	if s.InterruptsSent() == 0 {
		t.Fatal("no interrupts sent under PolicyPreempt")
	}
	w := s.Workers()[0]
	if w.Core().Context(0).TCB().PassiveSwitches() == 0 {
		t.Fatal("no passive switch recorded")
	}
}

func TestCooperativePolicyYields(t *testing.T) {
	s := New(Config{Policy: PolicyCooperative, Workers: 1, YieldInterval: 1000})
	s.Start()
	defer s.Stop()

	loDone := make(chan struct{})
	hiDone := make(chan *Request, 1)
	s.SubmitLow(0, &Request{Work: func(ctx *pcontext.Context) error {
		spinFor(ctx, 100*time.Millisecond)
		close(loDone)
		return nil
	}})
	time.Sleep(5 * time.Millisecond)
	req := &Request{Work: func(ctx *pcontext.Context) error { return nil },
		OnDone: func(r *Request) { hiDone <- r }}
	s.SubmitHighBatch([]*Request{req})

	select {
	case <-hiDone:
		select {
		case <-loDone:
			t.Fatal("cooperative yield did not happen before long txn end")
		default:
		}
	case <-time.After(5 * time.Second):
		t.Fatal("high-priority request not executed")
	}
	<-loDone
	if s.InterruptsSent() != 0 {
		t.Fatal("cooperative policy must not send interrupts")
	}
	w := s.Workers()[0]
	if w.Core().Context(0).TCB().ActiveSwitches() == 0 {
		t.Fatal("no voluntary switch recorded")
	}
}

func TestHandcraftedYield(t *testing.T) {
	s := New(Config{Policy: PolicyCooperativeHandcrafted, Workers: 1})
	s.Start()
	defer s.Stop()

	loDone := make(chan struct{})
	hiDone := make(chan *Request, 1)
	s.SubmitLow(0, &Request{Work: func(ctx *pcontext.Context) error {
		deadline := time.Now().Add(100 * time.Millisecond)
		for time.Now().Before(deadline) {
			for i := 0; i < 64; i++ {
				ctx.Poll()
			}
			Yield(ctx) // workload-placed yield point
		}
		close(loDone)
		return nil
	}})
	time.Sleep(5 * time.Millisecond)
	req := &Request{Work: func(ctx *pcontext.Context) error { return nil },
		OnDone: func(r *Request) { hiDone <- r }}
	s.SubmitHighBatch([]*Request{req})

	select {
	case <-hiDone:
		select {
		case <-loDone:
			t.Fatal("handcrafted yield did not serve high-priority in time")
		default:
		}
	case <-time.After(5 * time.Second):
		t.Fatal("high-priority request not executed")
	}
	<-loDone
}

func TestYieldOnDetachedContextSafe(t *testing.T) {
	Yield(nil)
	Yield(pcontext.Detached())
	core := pcontext.NewCore(0, 1) // core without scheduler user data
	Yield(core.Context(0))
}

func TestStarvationPreventionLimitsHighWork(t *testing.T) {
	// With threshold 0, the preemptive context must execute nothing; the
	// high-priority request completes only after the long txn, via the
	// regular path.
	s := New(Config{Policy: PolicyPreempt, Workers: 1, StarvationThreshold: 0.000001, HiQueueSize: 16})
	s.Start()
	defer s.Stop()

	loDone := make(chan struct{})
	s.SubmitLow(0, &Request{Work: func(ctx *pcontext.Context) error {
		spinFor(ctx, 60*time.Millisecond)
		close(loDone)
		return nil
	}})
	time.Sleep(5 * time.Millisecond)

	var hiFinished atomic.Int64
	reqs := make([]*Request, 8)
	for i := range reqs {
		reqs[i] = &Request{Work: func(ctx *pcontext.Context) error { return nil },
			OnDone: func(r *Request) { hiFinished.Add(1) }}
	}
	s.SubmitHighBatch(reqs)
	time.Sleep(20 * time.Millisecond)
	// Long txn still running: almost nothing should have executed.
	select {
	case <-loDone:
		t.Skip("long transaction finished too quickly to observe starvation prevention")
	default:
	}
	if hiFinished.Load() > 1 {
		t.Fatalf("starvation threshold ~0 admitted %d high-priority txns mid-Q2", hiFinished.Load())
	}
	<-loDone
	waitFor(t, func() bool { return hiFinished.Load() == int64(len(reqs)) },
		5*time.Second, "queued high-priority txns never drained via regular path")
}

func TestSchedulerSideStarvationSkip(t *testing.T) {
	// Decision point 1 from §5: the scheduler must not push to (or
	// interrupt) a worker whose starvation level exceeds the threshold.
	// Drive the core's starvation meter directly for determinism.
	s := New(Config{Policy: PolicyPreempt, Workers: 1, StarvationThreshold: 0.5, HiQueueSize: 4})
	w := s.Workers()[0] // not started: queues and meters are inert
	w.Core().Context(0).BeginLowPrio()
	time.Sleep(2 * time.Millisecond)
	w.Core().AddHighPrioNanos(int64(time.Hour)) // L ≫ 0.5

	reqs := []*Request{
		{Work: func(ctx *pcontext.Context) error { return nil }},
		{Work: func(ctx *pcontext.Context) error { return nil }},
	}
	if accepted := s.SubmitHighBatch(reqs); accepted != 0 {
		t.Fatalf("starved worker accepted %d requests", accepted)
	}
	if s.StarvationSkips() == 0 {
		t.Fatal("skip not recorded")
	}
	if s.InterruptsSent() != 0 {
		t.Fatal("interrupt sent to starved worker")
	}

	// The level freezes at transaction end — the worker keeps refusing
	// traffic between low-priority transactions (§5 semantics that give
	// fig12's thr=0 its maximum-Q2 behaviour)...
	w.Core().Context(0).EndLowPrio()
	if accepted := s.SubmitHighBatch(reqs); accepted != 0 {
		t.Fatalf("frozen-starved worker accepted %d", accepted)
	}
	// ...and resets when the next low-priority transaction starts.
	w.Core().Context(0).BeginLowPrio()
	if accepted := s.SubmitHighBatch(reqs); accepted != 2 {
		t.Fatalf("recovered worker accepted %d", accepted)
	}
}

func TestSubmitHighBatchFullQueues(t *testing.T) {
	s := New(Config{Policy: PolicyWait, Workers: 2, HiQueueSize: 2})
	// Not started: queues fill and stay full.
	reqs := make([]*Request, 10)
	for i := range reqs {
		reqs[i] = &Request{Work: func(ctx *pcontext.Context) error { return nil }}
	}
	accepted := s.SubmitHighBatch(reqs)
	if accepted != 4 { // 2 workers × queue size 2
		t.Fatalf("accepted %d, want 4", accepted)
	}
	if s.SubmitHighBatch(reqs[accepted:]) != 0 {
		t.Fatal("full queues accepted more")
	}
}

func TestSubmitLowFullQueue(t *testing.T) {
	s := New(Config{Policy: PolicyWait, Workers: 1, LoQueueSize: 1})
	r := &Request{Work: func(ctx *pcontext.Context) error { return nil }}
	if !s.SubmitLow(0, r) {
		t.Fatal("first push failed")
	}
	if s.SubmitLow(0, r) {
		t.Fatal("full low queue accepted")
	}
}

func TestPingAllOverheadPath(t *testing.T) {
	// fig8: empty interrupts must be absorbed without executing anything
	// and without wedging the workers.
	s := New(Config{Policy: PolicyPreempt, Workers: 2})
	s.Start()
	defer s.Stop()

	var lo atomic.Int64
	done := make(chan struct{})
	s.SubmitLow(0, &Request{Work: func(ctx *pcontext.Context) error {
		spinFor(ctx, 30*time.Millisecond)
		lo.Add(1)
		close(done)
		return nil
	}})
	for i := 0; i < 50; i++ {
		s.PingAll()
		time.Sleep(500 * time.Microsecond)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("worker wedged by empty interrupts")
	}
	if s.InterruptsSent() < 100 {
		t.Fatalf("interrupts sent = %d", s.InterruptsSent())
	}
	// No high-priority work existed, so no switches should have happened.
	w := s.Workers()[0]
	if w.Core().Context(0).TCB().PassiveSwitches() != 0 {
		t.Fatal("empty interrupt caused a context switch")
	}
}

func TestRequestLatencyAccessors(t *testing.T) {
	r := &Request{EnqueuedAt: 100, StartedAt: 150, FinishedAt: 400}
	if r.SchedulingLatency() != 50 || r.Latency() != 300 {
		t.Fatalf("sched=%d e2e=%d", r.SchedulingLatency(), r.Latency())
	}
}

func TestErrorRecorded(t *testing.T) {
	s := New(Config{Policy: PolicyWait, Workers: 1})
	s.Start()
	defer s.Stop()
	done := make(chan *Request, 1)
	s.SubmitHighBatch([]*Request{{
		Work:   func(ctx *pcontext.Context) error { return errSentinel },
		OnDone: func(r *Request) { done <- r },
	}})
	select {
	case r := <-done:
		if r.Err != errSentinel {
			t.Fatalf("err = %v", r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request not executed")
	}
}

var errSentinel = errTest("boom")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestStartTwicePanics(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Start()
	defer s.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Start()
}

func TestManyWorkersRoundRobin(t *testing.T) {
	s := New(Config{Policy: PolicyPreempt, Workers: 4, HiQueueSize: 2})
	s.Start()
	defer s.Stop()
	var n atomic.Int64
	const total = 64
	for i := 0; i < total; i += 8 {
		reqs := make([]*Request, 8)
		for j := range reqs {
			reqs[j] = &Request{Work: func(ctx *pcontext.Context) error { n.Add(1); return nil }}
		}
		for submitted := 0; submitted < len(reqs); {
			submitted += s.SubmitHighBatch(reqs[submitted:])
			time.Sleep(100 * time.Microsecond)
		}
	}
	waitFor(t, func() bool { return n.Load() == total }, 5*time.Second, "not all executed")
	// Work should be spread across all workers.
	for _, w := range s.Workers() {
		if w.ExecutedHigh() == 0 {
			t.Fatalf("worker %d executed nothing", w.ID())
		}
	}
}

// TestMorselStealing: an idle worker picks morsel helper tasks off the shared
// queue while another worker's low-priority transaction is still running, and
// the spawner resolves only for contexts attached to a scheduler worker.
func TestMorselStealing(t *testing.T) {
	s := New(Config{Policy: PolicyPreempt, Workers: 2})
	s.Start()
	defer s.Stop()

	if MorselSpawner(pcontext.Detached()) != nil {
		t.Fatal("detached context must not resolve a morsel spawner")
	}
	if MorselSpawner(nil) != nil {
		t.Fatal("nil context must not resolve a morsel spawner")
	}

	var ran atomic.Int64
	done := make(chan struct{})
	s.SubmitLow(0, &Request{Work: func(ctx *pcontext.Context) error {
		spawn := MorselSpawner(ctx)
		if spawn == nil {
			t.Error("worker context must resolve a morsel spawner")
			return nil
		}
		const tasks = 4
		for i := 0; i < tasks; i++ {
			if !spawn(func(hctx *pcontext.Context) { ran.Add(1) }) {
				t.Error("morsel queue rejected a task while nearly empty")
			}
		}
		// The parent stays busy: only the idle worker 1 can steal.
		for ran.Load() < tasks {
			ctx.Poll()
			runtime.Gosched()
		}
		close(done)
		return nil
	}})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("morsel tasks never executed")
	}
	if got := s.MorselsStolen(); got != 4 {
		t.Fatalf("MorselsStolen = %d, want 4", got)
	}
}

// TestSubmitMorselFull: a full morsel queue reports false instead of blocking,
// and nil tasks are rejected outright.
func TestSubmitMorselFull(t *testing.T) {
	s := New(Config{Workers: 1, MorselQueueSize: 2})
	// Not started: nothing drains the queue.
	if s.SubmitMorsel(nil) {
		t.Fatal("nil task accepted")
	}
	for i := 0; i < 2; i++ {
		if !s.SubmitMorsel(func(ctx *pcontext.Context) {}) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if s.SubmitMorsel(func(ctx *pcontext.Context) {}) {
		t.Fatal("push beyond capacity accepted")
	}
}
