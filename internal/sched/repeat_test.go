package sched

import (
	"testing"
	"time"

	"preemptdb/internal/pcontext"
)

func TestRepeatedPreemption(t *testing.T) {
	s := New(Config{Policy: PolicyPreempt, Workers: 1})
	s.Start()
	defer s.Stop()

	loDone := make(chan struct{})
	s.SubmitLow(0, &Request{Work: func(ctx *pcontext.Context) error {
		spinFor(ctx, 300*time.Millisecond)
		close(loDone)
		return nil
	}})
	time.Sleep(5 * time.Millisecond)
	for i := 0; i < 10; i++ {
		hiDone := make(chan *Request, 1)
		req := &Request{Work: func(ctx *pcontext.Context) error { return nil },
			OnDone: func(r *Request) { hiDone <- r }}
		if s.SubmitHighBatch([]*Request{req}) != 1 {
			t.Fatalf("round %d: not accepted", i)
		}
		select {
		case r := <-hiDone:
			lat := time.Duration(r.SchedulingLatency())
			// Every round must preempt promptly; a regression that loses
			// interrupts after the first switch shows up as ~spin duration.
			if lat > 50*time.Millisecond {
				w := s.Workers()[0]
				t.Fatalf("round %d: latency %v; passive=%d suppressed=%d/%d uif=%v pending=%v",
					i, lat,
					w.Core().Context(0).TCB().PassiveSwitches(),
					w.Core().Context(0).TCB().SuppressedPolls(),
					w.Core().Context(1).TCB().SuppressedPolls(),
					w.Core().Receiver().UIF(),
					w.Core().Receiver().UPID().Pending())
			}
		case <-time.After(5 * time.Second):
			t.Fatal("stuck")
		}
		time.Sleep(2 * time.Millisecond)
	}
	<-loDone
}
