package sched

import (
	"testing"
	"time"

	"preemptdb/internal/metrics"
	"preemptdb/internal/pcontext"
)

// TestPhaseMetricsOnPreemption drives one preemption cycle and checks the
// per-phase decomposition lands in the right (class, phase) histograms.
func TestPhaseMetricsOnPreemption(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Config{Policy: PolicyPreempt, Workers: 1, Metrics: reg})
	if s.Metrics() != reg {
		t.Fatal("scheduler must adopt the provided registry")
	}
	s.Start()
	defer s.Stop()

	loDone := make(chan *Request, 1)
	hiDone := make(chan *Request, 1)
	s.SubmitLow(0, &Request{Work: func(ctx *pcontext.Context) error {
		spinFor(ctx, 50*time.Millisecond)
		return nil
	}, OnDone: func(r *Request) { loDone <- r }})
	time.Sleep(5 * time.Millisecond)
	s.SubmitHighBatch([]*Request{{Work: func(ctx *pcontext.Context) error {
		spinFor(ctx, time.Millisecond)
		return nil
	}, OnDone: func(r *Request) { hiDone <- r }}})

	for _, ch := range []chan *Request{hiDone, loDone} {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatal("request did not complete")
		}
	}

	snap := reg.Snapshot()
	if snap.Hi.Total.Count != 1 || snap.Hi.QueueWait.Count != 1 || snap.Hi.Exec.Count != 1 {
		t.Fatalf("hi counts: total=%d queue=%d exec=%d",
			snap.Hi.Total.Count, snap.Hi.QueueWait.Count, snap.Hi.Exec.Count)
	}
	if snap.Lo.Total.Count != 1 || snap.Lo.Exec.Count != 1 {
		t.Fatalf("lo counts: total=%d exec=%d", snap.Lo.Total.Count, snap.Lo.Exec.Count)
	}
	// The low-priority transaction was preempted at least once: it must have
	// pause, pause-total, and resume observations, and its exec time must
	// exclude the pause (total = queue + exec + pause to within clock skew).
	if snap.Lo.Pause.Count == 0 || snap.Lo.PauseTotal.Count != 1 || snap.Lo.Resume.Count == 0 {
		t.Fatalf("lo pause phases: pause=%d pause_total=%d resume=%d",
			snap.Lo.Pause.Count, snap.Lo.PauseTotal.Count, snap.Lo.Resume.Count)
	}
	if snap.Lo.PauseTotal.Min < int64(500*time.Microsecond) {
		t.Fatalf("pause total %v shorter than the hi txn that caused it",
			time.Duration(snap.Lo.PauseTotal.Min))
	}
	sumOfParts := snap.Lo.QueueWait.Max + snap.Lo.Exec.Max + snap.Lo.PauseTotal.Max
	if total := snap.Lo.Total.Max; sumOfParts > total+total/4 {
		t.Fatalf("decomposition inconsistent: parts=%v total=%v",
			time.Duration(sumOfParts), time.Duration(total))
	}
	// The preemption interrupt's delivery latency must have been sampled.
	if snap.UintrDelivery.Count == 0 {
		t.Fatal("no uintr delivery latency samples")
	}
	// The hi transaction never pauses in this scenario.
	if snap.Hi.PauseTotal.Count != 0 {
		t.Fatalf("hi pause_total count = %d, want 0", snap.Hi.PauseTotal.Count)
	}
}

// TestTraceOnByDefault: a scheduler built with a zero Config must come up
// with per-core tracers attached and annotate events with transaction tags.
func TestTraceOnByDefault(t *testing.T) {
	s := New(Config{Policy: PolicyPreempt, Workers: 1})
	s.Start()
	defer s.Stop()

	loDone := make(chan struct{})
	hiDone := make(chan struct{})
	s.SubmitLow(0, &Request{Work: func(ctx *pcontext.Context) error {
		spinFor(ctx, 50*time.Millisecond)
		return nil
	}, OnDone: func(*Request) { close(loDone) }})
	time.Sleep(5 * time.Millisecond)
	s.SubmitHighBatch([]*Request{{Work: func(ctx *pcontext.Context) error { return nil },
		OnDone: func(*Request) { close(hiDone) }}})
	<-hiDone
	<-loDone

	cores := s.TraceSnapshot()
	if len(cores) != 1 {
		t.Fatalf("trace cores = %d, want 1", len(cores))
	}
	var switches, tagged int
	for _, e := range cores[0].Events {
		if e.Kind == pcontext.EvPassiveSwitch || e.Kind == pcontext.EvActiveSwitch {
			switches++
		}
		if e.Tag != 0 {
			tagged++
		}
	}
	if switches < 2 {
		t.Fatalf("expected a preemption round-trip in the trace, got %d switches: %v",
			switches, cores[0].Events)
	}
	if tagged == 0 {
		t.Fatal("no trace events carry a transaction tag")
	}
	data, err := pcontext.ChromeTrace(cores)
	if err != nil {
		t.Fatal(err)
	}
	if err := pcontext.ValidateChromeTrace(data); err != nil {
		t.Fatalf("scheduler trace fails Chrome export validation: %v", err)
	}
}

// TestTraceDisabled: negative capacity must switch tracing off.
func TestTraceDisabled(t *testing.T) {
	s := New(Config{Workers: 1, TraceCapacity: -1})
	if got := s.TraceSnapshot(); got != nil {
		t.Fatalf("tracing disabled but snapshot = %v", got)
	}
}
