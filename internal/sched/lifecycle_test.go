package sched

import (
	"errors"
	"testing"
	"time"

	"preemptdb/internal/clock"
	"preemptdb/internal/pcontext"
)

// blockWorker submits a low-priority request that holds worker 0 until the
// returned release func is called, and waits until it is actually running.
func blockWorker(t *testing.T, s *Scheduler) (release func()) {
	t.Helper()
	started := make(chan struct{})
	gate := make(chan struct{})
	ok := s.SubmitLow(0, &Request{Work: func(ctx *pcontext.Context) error {
		close(started)
		<-gate
		return nil
	}})
	if !ok {
		t.Fatal("blocker not accepted")
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("blocker never started")
	}
	return func() { close(gate) }
}

func waitDone(t *testing.T, ch <-chan *Request) *Request {
	t.Helper()
	select {
	case r := <-ch:
		return r
	case <-time.After(5 * time.Second):
		t.Fatal("request never completed")
		return nil
	}
}

// TestShedExpiredBeforeExecution: a queued request whose deadline passes
// while it waits must be shed at dispatch — typed error, no execution, and
// the ShedExpired counter ticks.
func TestShedExpiredBeforeExecution(t *testing.T) {
	s := New(Config{Workers: 1, LoQueueSize: 4})
	s.Start()
	defer s.Stop()
	release := blockWorker(t, s)

	done := make(chan *Request, 1)
	ran := false
	req := &Request{
		Deadline: clock.Nanos(), // already due: certain to be expired at dispatch
		Work: func(ctx *pcontext.Context) error {
			ran = true
			return nil
		},
		OnDone: func(r *Request) { done <- r },
	}
	if !s.SubmitLow(0, req) {
		t.Fatal("request not accepted")
	}
	release()
	r := waitDone(t, done)
	if !errors.Is(r.Err, pcontext.ErrDeadlineExceeded) {
		t.Fatalf("Err = %v", r.Err)
	}
	if ran {
		t.Fatal("expired request must not execute")
	}
	if r.StartedAt == 0 || r.FinishedAt != r.StartedAt {
		t.Fatalf("shed request timestamps: start %d finish %d", r.StartedAt, r.FinishedAt)
	}
	if got := s.ShedExpired(); got != 1 {
		t.Fatalf("ShedExpired = %d", got)
	}
	if got := s.ShedCanceled(); got != 0 {
		t.Fatalf("ShedCanceled = %d", got)
	}
}

// TestShedCanceledBeforeExecution: canceling a queued request drops it at
// dispatch with ErrCanceled.
func TestShedCanceledBeforeExecution(t *testing.T) {
	s := New(Config{Workers: 1, LoQueueSize: 4})
	s.Start()
	defer s.Stop()
	release := blockWorker(t, s)

	done := make(chan *Request, 1)
	ran := false
	req := &Request{
		Work:   func(ctx *pcontext.Context) error { ran = true; return nil },
		OnDone: func(r *Request) { done <- r },
	}
	if !s.SubmitLow(0, req) {
		t.Fatal("request not accepted")
	}
	req.Cancel()
	if !req.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	release()
	r := waitDone(t, done)
	if !errors.Is(r.Err, pcontext.ErrCanceled) {
		t.Fatalf("Err = %v", r.Err)
	}
	if ran {
		t.Fatal("canceled request must not execute")
	}
	if got := s.ShedCanceled(); got != 1 {
		t.Fatalf("ShedCanceled = %d", got)
	}
}

// TestCancelRunningRequest: Cancel reaches a request already executing via
// the armed context, and the transaction observes it at its next poll.
func TestCancelRunningRequest(t *testing.T) {
	s := New(Config{Workers: 1, LoQueueSize: 4})
	s.Start()
	defer s.Stop()

	started := make(chan struct{})
	done := make(chan *Request, 1)
	req := &Request{
		Work: func(ctx *pcontext.Context) error {
			close(started)
			for {
				ctx.Poll()
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		},
		OnDone: func(r *Request) { done <- r },
	}
	if !s.SubmitLow(0, req) {
		t.Fatal("request not accepted")
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("request never started")
	}
	req.Cancel()
	r := waitDone(t, done)
	if !errors.Is(r.Err, pcontext.ErrCanceled) {
		t.Fatalf("Err = %v", r.Err)
	}
	// A mid-flight cancel is not a dispatch shed.
	if got := s.ShedCanceled(); got != 0 {
		t.Fatalf("ShedCanceled = %d", got)
	}
}

// TestDeadlineCancelsRunningRequest: an armed deadline trips mid-execution
// at the next poll.
func TestDeadlineCancelsRunningRequest(t *testing.T) {
	s := New(Config{Workers: 1, LoQueueSize: 4})
	s.Start()
	defer s.Stop()

	done := make(chan *Request, 1)
	req := &Request{
		Deadline: clock.Nanos() + int64(2*time.Millisecond),
		Work: func(ctx *pcontext.Context) error {
			for {
				ctx.Poll()
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		},
		OnDone: func(r *Request) { done <- r },
	}
	if !s.SubmitLow(0, req) {
		t.Fatal("request not accepted")
	}
	r := waitDone(t, done)
	if !errors.Is(r.Err, pcontext.ErrDeadlineExceeded) {
		t.Fatalf("Err = %v", r.Err)
	}
	if r.FinishedAt == r.StartedAt {
		t.Fatal("request was shed, expected it to execute and trip mid-flight")
	}
}

// TestStaleCancelDoesNotPoisonNextRequest: canceling a request after it
// finished must not leak into the next request executed on the same context
// — the generation fence in action.
func TestStaleCancelDoesNotPoisonNextRequest(t *testing.T) {
	s := New(Config{Workers: 1, LoQueueSize: 4})
	s.Start()
	defer s.Stop()

	first := &Request{Work: func(ctx *pcontext.Context) error { return nil }}
	done1 := make(chan *Request, 1)
	first.OnDone = func(r *Request) { done1 <- r }
	if !s.SubmitLow(0, first) {
		t.Fatal("first not accepted")
	}
	waitDone(t, done1)

	// The context has moved on; this cancel must be fenced off.
	first.Cancel()

	done2 := make(chan *Request, 1)
	second := &Request{
		Work: func(ctx *pcontext.Context) error {
			for i := 0; i < 1000; i++ {
				ctx.Poll()
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			return nil
		},
		OnDone: func(r *Request) { done2 <- r },
	}
	if !s.SubmitLow(0, second) {
		t.Fatal("second not accepted")
	}
	if r := waitDone(t, done2); r.Err != nil {
		t.Fatalf("stale cancel poisoned the next request: %v", r.Err)
	}
}
