package sched

import (
	"sync/atomic"
	"testing"
	"time"

	"preemptdb/internal/clock"
	"preemptdb/internal/pcontext"
)

// stallSpin simulates a stall-marked transaction body: n batches of polls,
// each followed by a stall boundary (the shape btree descents produce).
func stallSpin(ctx *pcontext.Context, n int) {
	for i := 0; i < n; i++ {
		ctx.Poll()
		ctx.YieldStall()
		if ctx.Err() != nil {
			return
		}
	}
}

func TestConfigContextsPerCoreClamped(t *testing.T) {
	if c := (Config{}).withDefaults(); c.ContextsPerCore != 2 {
		t.Fatalf("default ContextsPerCore = %d, want 2", c.ContextsPerCore)
	}
	if c := (Config{ContextsPerCore: 1}).withDefaults(); c.ContextsPerCore != 2 {
		t.Fatalf("ContextsPerCore=1 clamped to %d, want 2", c.ContextsPerCore)
	}
	if c := (Config{ContextsPerCore: 99}).withDefaults(); c.ContextsPerCore != MaxContextsPerCore {
		t.Fatalf("ContextsPerCore=99 clamped to %d, want %d", c.ContextsPerCore, MaxContextsPerCore)
	}
	if c := (Config{}).withDefaults(); c.StallInterval != 64 {
		t.Fatalf("default StallInterval = %d, want 64", c.StallInterval)
	}
}

func TestTwoContextCoreNeverRotates(t *testing.T) {
	// K=2 is the paper's configuration and must take the exact pre-K-way
	// path: the stall hook is not installed, so stall marks are counters
	// only and the interleave counters stay zero.
	s := New(Config{Policy: PolicyPreempt, Workers: 1, LoQueueSize: 8, StallInterval: 1})
	s.Start()
	var done atomic.Int64
	for i := 0; i < 4; i++ {
		ok := s.SubmitLow(0, &Request{
			Work:   func(ctx *pcontext.Context) error { stallSpin(ctx, 256); return nil },
			OnDone: func(*Request) { done.Add(1) },
		})
		if !ok {
			t.Fatalf("SubmitLow %d refused", i)
		}
	}
	waitFor(t, func() bool { return done.Load() == 4 }, 5*time.Second, "lo requests never drained")
	s.Stop()
	if y, sw := s.StallYields(), s.InterleaveSwitches(); y != 0 || sw != 0 {
		t.Fatalf("two-context core rotated: stallYields=%d interleaveSwitches=%d", y, sw)
	}
}

func TestKWayStallRotation(t *testing.T) {
	// A 4-context core with stall-marked work and a fed low-priority queue
	// must interleave: rotations away at stall boundaries and resumptions of
	// stall-parked transactions, with every request still completing.
	s := New(Config{Policy: PolicyPreempt, Workers: 1, ContextsPerCore: 4,
		LoQueueSize: 16, StallInterval: 1})
	s.Start()
	const n = 12
	var done atomic.Int64
	for i := 0; i < n; i++ {
		ok := s.SubmitLow(0, &Request{
			Work:   func(ctx *pcontext.Context) error { stallSpin(ctx, 512); return nil },
			OnDone: func(*Request) { done.Add(1) },
		})
		if !ok {
			t.Fatalf("SubmitLow %d refused", i)
		}
	}
	waitFor(t, func() bool { return done.Load() == n }, 10*time.Second, "lo requests never drained")
	s.Stop()
	if s.StallYields() == 0 {
		t.Fatal("no stall-boundary rotations on a 4-context core")
	}
	if s.InterleaveSwitches() == 0 {
		t.Fatal("no stall-parked transaction was ever resumed")
	}
}

func TestKWayHiPreemptsInterleavedSlots(t *testing.T) {
	// High-priority work must preempt a K-way core exactly as it does a
	// two-context one: the preemptive context always wins, regardless of
	// which low slot happens to hold the core.
	s := New(Config{Policy: PolicyPreempt, Workers: 1, ContextsPerCore: 4,
		LoQueueSize: 16, HiQueueSize: 4, StallInterval: 1})
	s.Start()
	var stop atomic.Bool
	var loDone, hiDone atomic.Int64
	var relo func() *Request
	relo = func() *Request {
		return &Request{
			Work: func(ctx *pcontext.Context) error { stallSpin(ctx, 256); return nil },
			OnDone: func(*Request) {
				loDone.Add(1)
				if !stop.Load() {
					s.SubmitLow(0, relo())
				}
			},
		}
	}
	for i := 0; i < 6; i++ {
		s.SubmitLow(0, relo())
	}
	const hiN = 40
	for i := 0; i < hiN; i++ {
		reqs := []*Request{{
			Work:   func(ctx *pcontext.Context) error { return nil },
			OnDone: func(*Request) { hiDone.Add(1) },
		}}
		for s.SubmitHighBatch(reqs) == 0 {
			time.Sleep(50 * time.Microsecond)
		}
		time.Sleep(200 * time.Microsecond)
	}
	waitFor(t, func() bool { return hiDone.Load() == hiN }, 10*time.Second, "hi requests never drained")
	stop.Store(true)
	s.Stop()
	if s.InterruptsSent() == 0 {
		t.Fatal("no interrupts sent under PolicyPreempt")
	}
	if loDone.Load() == 0 {
		t.Fatal("interleaved lo work starved out entirely")
	}
}

// TestKWayIsolationTorture is the -race torture for K-way multiplexing:
// K low slots interleaving at stall boundaries × preemptive hi traffic ×
// mid-flight Cancel × deadline expiry. Each body stamps its CLS user slot
// and trace tag and re-checks them at every stall boundary — rotation and
// preemption must never bleed either across slots — and every request's
// OnDone must fire exactly once.
func TestKWayIsolationTorture(t *testing.T) {
	s := New(Config{Policy: PolicyPreempt, Workers: 2, ContextsPerCore: 4,
		LoQueueSize: 32, HiQueueSize: 4, StallInterval: 1})
	s.Start()

	type tracked struct {
		req  *Request
		done atomic.Int64
	}
	var bad atomic.Int64
	newBody := func(id uint64) func(ctx *pcontext.Context) error {
		return func(ctx *pcontext.Context) error {
			cls := ctx.CLS()
			cls.Set(pcontext.SlotUser, id)
			tag := ctx.TraceTag()
			for i := 0; i < 300; i++ {
				ctx.Poll()
				ctx.YieldStall()
				if v, _ := cls.Get(pcontext.SlotUser).(uint64); v != id {
					bad.Add(1)
					return nil
				}
				if ctx.TraceTag() != tag {
					bad.Add(1)
					return nil
				}
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			return nil
		}
	}

	const n = 120
	reqs := make([]*tracked, n)
	var next atomic.Uint64
	for i := range reqs {
		tr := &tracked{}
		tr.req = &Request{
			Work:   newBody(next.Add(1)),
			OnDone: func(*Request) { tr.done.Add(1) },
		}
		switch i % 3 {
		case 1: // deadline mid-flight (some expire queued, some running)
			tr.req.Deadline = clock.Nanos() + int64(time.Duration(200+i)*time.Microsecond)
		}
		reqs[i] = tr
	}

	// Feed the low queues from a producer while canceling every third
	// request from outside and hammering both workers with hi batches.
	go func() {
		for i, tr := range reqs {
			for !s.SubmitLow(i%2, tr.req) {
				time.Sleep(20 * time.Microsecond)
			}
			if i%3 == 2 {
				go tr.req.Cancel()
			}
		}
	}()
	hiStop := make(chan struct{})
	go func() {
		for {
			select {
			case <-hiStop:
				return
			default:
			}
			s.SubmitHighBatch([]*Request{
				{Work: func(ctx *pcontext.Context) error { return nil }},
				{Work: func(ctx *pcontext.Context) error { return nil }},
			})
			time.Sleep(100 * time.Microsecond)
		}
	}()

	waitFor(t, func() bool {
		for _, tr := range reqs {
			if tr.done.Load() == 0 {
				return false
			}
		}
		return true
	}, 20*time.Second, "torture requests never drained")
	close(hiStop)
	s.Stop()

	if bad.Load() != 0 {
		t.Fatalf("%d context-local bleeds across slots", bad.Load())
	}
	for i, tr := range reqs {
		if c := tr.done.Load(); c != 1 {
			t.Fatalf("request %d OnDone ran %d times", i, c)
		}
	}
}
