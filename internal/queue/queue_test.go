package queue

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 63: 64, 64: 64, 65: 128}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSPSCBasic(t *testing.T) {
	q := NewSPSC[int](4)
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("new queue must be empty")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
	for i := 0; i < 4; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Push(99) {
		t.Fatal("push to full succeeded")
	}
	if q.Len() != 4 || q.Free() != 0 {
		t.Fatalf("len=%d free=%d", q.Len(), q.Free())
	}
	for i := 0; i < 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if !q.Empty() {
		t.Fatal("queue should be empty")
	}
}

func TestSPSCWraparound(t *testing.T) {
	q := NewSPSC[int](2)
	for round := 0; round < 1000; round++ {
		if !q.Push(round) {
			t.Fatalf("push failed at round %d", round)
		}
		v, ok := q.Pop()
		if !ok || v != round {
			t.Fatalf("round %d: got (%d,%v)", round, v, ok)
		}
	}
}

func TestSPSCConcurrentFIFO(t *testing.T) {
	q := NewSPSC[int](64)
	const n = 200000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; {
			if q.Push(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	next := 0
	for next < n {
		v, ok := q.Pop()
		if !ok {
			runtime.Gosched()
			continue
		}
		if v != next {
			t.Fatalf("out of order: got %d want %d", v, next)
		}
		next++
	}
	wg.Wait()
}

func TestSPSCReleasesReferences(t *testing.T) {
	q := NewSPSC[*int](2)
	x := new(int)
	q.Push(x)
	q.Pop()
	if q.buf[0].v != nil {
		t.Fatal("popped slot still references value")
	}
}

func TestMPMCBasic(t *testing.T) {
	q := NewMPMC[string](4)
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
	if !q.Push("a") || !q.Push("b") {
		t.Fatal("pushes failed")
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
	v, ok := q.Pop()
	if !ok || v != "a" {
		t.Fatalf("pop = (%q,%v)", v, ok)
	}
}

func TestMPMCFull(t *testing.T) {
	q := NewMPMC[int](2)
	if !q.Push(1) || !q.Push(2) {
		t.Fatal("fill failed")
	}
	if q.Push(3) {
		t.Fatal("push to full succeeded")
	}
	q.Pop()
	if !q.Push(3) {
		t.Fatal("push after pop failed")
	}
}

func TestMPMCConcurrentSum(t *testing.T) {
	q := NewMPMC[int](128)
	const producers, perProducer = 4, 20000
	var produced, consumed atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := base*perProducer + i
				for !q.Push(v) {
					runtime.Gosched()
				}
				produced.Add(int64(v))
			}
		}(p)
	}
	var cwg sync.WaitGroup
	var got atomic.Int64
	stop := make(chan struct{})
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				if v, ok := q.Pop(); ok {
					got.Add(int64(v))
					consumed.Add(1)
					continue
				}
				select {
				case <-stop:
					// Drain any residue then exit.
					for {
						v, ok := q.Pop()
						if !ok {
							return
						}
						got.Add(int64(v))
						consumed.Add(1)
					}
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	cwg.Wait()
	if consumed.Load() != producers*perProducer {
		t.Fatalf("consumed %d of %d", consumed.Load(), producers*perProducer)
	}
	if got.Load() != produced.Load() {
		t.Fatalf("sum mismatch: %d vs %d", got.Load(), produced.Load())
	}
}

func TestMPMCPerProducerOrder(t *testing.T) {
	// With a single consumer, each producer's elements must arrive in its
	// own program order.
	q := NewMPMC[[2]int](64)
	const producers, per = 3, 5000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for !q.Push([2]int{p, i}) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	seen := make([]int, producers)
	donep := make(chan struct{})
	go func() { wg.Wait(); close(donep) }()
	received := 0
	for received < producers*per {
		v, ok := q.Pop()
		if !ok {
			runtime.Gosched()
			continue
		}
		{
			p, i := v[0], v[1]
			if i != seen[p] {
				t.Errorf("producer %d out of order: got %d want %d", p, i, seen[p])
				return
			}
			seen[p]++
			received++
		}
	}
	<-donep
}

func TestQuickSPSCSequential(t *testing.T) {
	// Property: any interleaving of pushes then pops behaves like a FIFO.
	err := quick.Check(func(vals []uint16) bool {
		q := NewSPSC[uint16](len(vals) + 1)
		for _, v := range vals {
			if !q.Push(v) {
				return false
			}
		}
		for _, want := range vals {
			got, ok := q.Pop()
			if !ok || got != want {
				return false
			}
		}
		_, ok := q.Pop()
		return !ok
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSPSCPushPop(b *testing.B) {
	q := NewSPSC[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}

func BenchmarkMPMCPushPop(b *testing.B) {
	q := NewMPMC[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}
