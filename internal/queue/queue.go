// Package queue provides the bounded lock-free rings PreemptDB workers use as
// per-worker scheduling queues (paper §4.1): a single scheduling thread
// produces transaction requests into each worker's high- and low-priority
// queues, and the worker's contexts consume them.
//
// Two variants are provided. SPSC is the fast path used when exactly one
// scheduling thread feeds one worker. MPMC is a Vyukov-style bounded queue
// used where several producers (e.g. multiple scheduling threads, or both of
// a worker's contexts re-enqueueing) may touch the queue.
package queue

import (
	"sync/atomic"
)

// SPSC is a bounded single-producer single-consumer ring. Producer methods
// must be called from one goroutine, consumer methods from one goroutine;
// the two sides may run concurrently. Capacity is rounded up to a power of
// two. The zero value is not usable; call NewSPSC.
type SPSC[T any] struct {
	mask  uint64
	buf   []slot[T]
	_     [48]byte // keep head/tail on separate cache lines from buf header
	head  atomic.Uint64
	_     [56]byte
	tail  atomic.Uint64
}

type slot[T any] struct {
	full atomic.Bool
	v    T
}

// NewSPSC returns an SPSC ring holding at least capacity elements.
func NewSPSC[T any](capacity int) *SPSC[T] {
	n := nextPow2(capacity)
	return &SPSC[T]{mask: uint64(n - 1), buf: make([]slot[T], n)}
}

func nextPow2(n int) int {
	if n < 1 {
		n = 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Push appends v; it reports false when the ring is full.
func (q *SPSC[T]) Push(v T) bool {
	t := q.tail.Load()
	s := &q.buf[t&q.mask]
	if s.full.Load() {
		return false
	}
	s.v = v
	s.full.Store(true)
	q.tail.Store(t + 1)
	return true
}

// Pop removes the oldest element; ok is false when the ring is empty.
func (q *SPSC[T]) Pop() (v T, ok bool) {
	h := q.head.Load()
	s := &q.buf[h&q.mask]
	if !s.full.Load() {
		return v, false
	}
	v = s.v
	var zero T
	s.v = zero // release references for GC
	s.full.Store(false)
	q.head.Store(h + 1)
	return v, true
}

// Len returns the approximate number of queued elements.
func (q *SPSC[T]) Len() int {
	t, h := q.tail.Load(), q.head.Load()
	if t < h {
		return 0
	}
	return int(t - h)
}

// Cap returns the ring capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Empty reports whether the ring is (approximately) empty; exact when called
// by the consumer with no concurrent pops.
func (q *SPSC[T]) Empty() bool {
	h := q.head.Load()
	return !q.buf[h&q.mask].full.Load()
}

// Free returns the approximate number of free slots.
func (q *SPSC[T]) Free() int { return q.Cap() - q.Len() }

// MPMC is a bounded multi-producer multi-consumer queue (Dmitry Vyukov's
// bounded MPMC algorithm): each slot carries a sequence number that tickets
// producers and consumers without locks.
type MPMC[T any] struct {
	mask uint64
	buf  []mpmcSlot[T]
	_    [48]byte
	head atomic.Uint64 // consumer ticket
	_    [56]byte
	tail atomic.Uint64 // producer ticket
}

type mpmcSlot[T any] struct {
	seq atomic.Uint64
	v   T
}

// NewMPMC returns an MPMC queue holding at least capacity elements.
func NewMPMC[T any](capacity int) *MPMC[T] {
	n := nextPow2(capacity)
	q := &MPMC[T]{mask: uint64(n - 1), buf: make([]mpmcSlot[T], n)}
	for i := range q.buf {
		q.buf[i].seq.Store(uint64(i))
	}
	return q
}

// Push appends v; it reports false when the queue is full.
func (q *MPMC[T]) Push(v T) bool {
	for {
		t := q.tail.Load()
		s := &q.buf[t&q.mask]
		seq := s.seq.Load()
		switch {
		case seq == t:
			if q.tail.CompareAndSwap(t, t+1) {
				s.v = v
				s.seq.Store(t + 1)
				return true
			}
		case seq < t:
			return false // full
		default:
			// Another producer claimed this slot; retry with a fresh tail.
		}
	}
}

// Pop removes the oldest element; ok is false when the queue is empty.
func (q *MPMC[T]) Pop() (v T, ok bool) {
	for {
		h := q.head.Load()
		s := &q.buf[h&q.mask]
		seq := s.seq.Load()
		switch {
		case seq == h+1:
			if q.head.CompareAndSwap(h, h+1) {
				v = s.v
				var zero T
				s.v = zero
				s.seq.Store(h + q.mask + 1)
				return v, true
			}
		case seq <= h:
			return v, false // empty
		default:
			// Another consumer claimed this slot; retry.
		}
	}
}

// Len returns the approximate number of queued elements.
func (q *MPMC[T]) Len() int {
	t, h := q.tail.Load(), q.head.Load()
	if t < h {
		return 0
	}
	return int(t - h)
}

// Cap returns the queue capacity.
func (q *MPMC[T]) Cap() int { return len(q.buf) }

// Empty reports whether the queue is approximately empty.
func (q *MPMC[T]) Empty() bool { return q.Len() == 0 }

// Free returns the approximate number of free slots.
func (q *MPMC[T]) Free() int { return q.Cap() - q.Len() }
