// Package keys builds order-preserving composite []byte keys for B+tree
// indexes: bytewise comparison of encoded keys matches the natural ordering
// of the original tuples. Workload schemas (TPC-C, TPC-H) encode their
// primary and secondary keys with it.
//
// Encoding rules:
//   - unsigned integers: fixed-width big-endian
//   - signed integers: big-endian with the sign bit flipped
//   - strings: NUL-terminated, with embedded 0x00 escaped as 0x00 0xFF, so
//     prefixes sort before extensions and components cannot bleed together
package keys

import "encoding/binary"

// Uint32 appends a fixed-width big-endian uint32.
func Uint32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}

// Uint64 appends a fixed-width big-endian uint64.
func Uint64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

// Int64 appends a signed 64-bit value so negative numbers sort first.
func Int64(b []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(b, uint64(v)^(1<<63))
}

// String appends an escaped, NUL-terminated string component.
func String(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		b = append(b, c)
		if c == 0x00 {
			b = append(b, 0xFF)
		}
	}
	return append(b, 0x00)
}

// DecodeUint32 reads a Uint32 component, returning the value and the rest.
func DecodeUint32(b []byte) (uint32, []byte) {
	return binary.BigEndian.Uint32(b), b[4:]
}

// DecodeUint64 reads a Uint64 component, returning the value and the rest.
func DecodeUint64(b []byte) (uint64, []byte) {
	return binary.BigEndian.Uint64(b), b[8:]
}

// DecodeInt64 reads an Int64 component, returning the value and the rest.
func DecodeInt64(b []byte) (int64, []byte) {
	return int64(binary.BigEndian.Uint64(b) ^ (1 << 63)), b[8:]
}

// DecodeString reads a String component, returning the value and the rest.
func DecodeString(b []byte) (string, []byte) {
	var out []byte
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c == 0x00 {
			if i+1 < len(b) && b[i+1] == 0xFF {
				out = append(out, 0x00)
				i++
				continue
			}
			return string(out), b[i+1:]
		}
		out = append(out, c)
	}
	return string(out), nil
}

// PrefixEnd returns the smallest key strictly greater than every key with
// the given prefix, for use as an exclusive scan upper bound. It returns nil
// (unbounded) when the prefix is all 0xFF.
func PrefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}
