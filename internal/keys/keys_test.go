package keys

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestUintRoundtripAndOrder(t *testing.T) {
	err := quick.Check(func(a, b uint64) bool {
		ka := Uint64(nil, a)
		kb := Uint64(nil, b)
		va, _ := DecodeUint64(ka)
		vb, _ := DecodeUint64(kb)
		if va != a || vb != b {
			return false
		}
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestInt64Order(t *testing.T) {
	err := quick.Check(func(a, b int64) bool {
		cmp := bytes.Compare(Int64(nil, a), Int64(nil, b))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	va, _ := DecodeInt64(Int64(nil, -42))
	if va != -42 {
		t.Fatalf("roundtrip = %d", va)
	}
}

func TestStringRoundtripAndOrder(t *testing.T) {
	err := quick.Check(func(a, b string) bool {
		ka, kb := String(nil, a), String(nil, b)
		va, _ := DecodeString(ka)
		vb, _ := DecodeString(kb)
		if va != a || vb != b {
			return false
		}
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestStringWithNULs(t *testing.T) {
	s := "a\x00b\x00\x00c"
	k := String(nil, s)
	got, rest := DecodeString(k)
	if got != s || len(rest) != 0 {
		t.Fatalf("got %q rest %v", got, rest)
	}
	// "a\x00" must sort before "a\x01" despite escaping.
	if bytes.Compare(String(nil, "a\x00"), String(nil, "a\x01")) >= 0 {
		t.Fatal("NUL escaping broke ordering")
	}
	// Prefix sorts before extension.
	if bytes.Compare(String(nil, "ab"), String(nil, "abc")) >= 0 {
		t.Fatal("prefix must sort first")
	}
}

func TestCompositeKeys(t *testing.T) {
	k1 := String(Uint32(nil, 1), "smith")
	k2 := String(Uint32(nil, 1), "smithe")
	k3 := String(Uint32(nil, 2), "a")
	if !(bytes.Compare(k1, k2) < 0 && bytes.Compare(k2, k3) < 0) {
		t.Fatal("composite ordering broken")
	}
	w, rest := DecodeUint32(k1)
	name, rest := DecodeString(rest)
	if w != 1 || name != "smith" || len(rest) != 0 {
		t.Fatalf("decode: %d %q %v", w, name, rest)
	}
}

func TestPrefixEnd(t *testing.T) {
	p := []byte{1, 2, 3}
	end := PrefixEnd(p)
	if !bytes.Equal(end, []byte{1, 2, 4}) {
		t.Fatalf("end = %v", end)
	}
	if !bytes.Equal(PrefixEnd([]byte{1, 0xFF}), []byte{2}) {
		t.Fatal("carry failed")
	}
	if PrefixEnd([]byte{0xFF, 0xFF}) != nil {
		t.Fatal("all-FF prefix must be unbounded")
	}
	// PrefixEnd must not mutate its argument.
	if p[2] != 3 {
		t.Fatal("argument mutated")
	}
	// Every key with the prefix is < end; the next prefix is >= end.
	key := append(append([]byte(nil), p...), 0xFF, 0xFF)
	if bytes.Compare(key, end) >= 0 {
		t.Fatal("key with prefix not below end")
	}
}
