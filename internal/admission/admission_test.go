package admission

import (
	"sync"
	"testing"
	"time"

	"preemptdb/internal/clock"
)

func TestUnlimited(t *testing.T) {
	c := New(0, 1, 0)
	for i := 0; i < 1000; i++ {
		if !c.Admit() {
			t.Fatal("unlimited controller rejected")
		}
	}
	a, r := c.Stats()
	if a != 1000 || r != 0 {
		t.Fatalf("stats = %d/%d", a, r)
	}
}

func TestBurstThenRateLimit(t *testing.T) {
	c := New(10, 5, 0) // 10/s, burst 5
	admitted := 0
	for i := 0; i < 20; i++ {
		if c.Admit() {
			admitted++
		}
	}
	if admitted < 5 || admitted > 7 {
		t.Fatalf("instant burst admitted %d, want ~5", admitted)
	}
	// After 300ms, ~3 more tokens accrue.
	time.Sleep(300 * time.Millisecond)
	more := 0
	for i := 0; i < 20; i++ {
		if c.Admit() {
			more++
		}
	}
	if more < 1 || more > 6 {
		t.Fatalf("refill admitted %d, want ~3", more)
	}
}

func TestInFlightCap(t *testing.T) {
	c := New(0, 1, 3)
	for i := 0; i < 3; i++ {
		if !c.Admit() {
			t.Fatalf("admit %d failed", i)
		}
	}
	if c.Admit() {
		t.Fatal("admitted above cap")
	}
	if c.InFlight() != 3 {
		t.Fatalf("inflight = %d", c.InFlight())
	}
	c.Release()
	if !c.Admit() {
		t.Fatal("admit after release failed")
	}
	_, rejected := c.Stats()
	if rejected != 1 {
		t.Fatalf("rejected = %d", rejected)
	}
}

func TestReleaseWithoutAdmitPanics(t *testing.T) {
	c := New(0, 1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Release()
}

func TestConcurrentAdmitRelease(t *testing.T) {
	c := New(0, 1, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				if c.Admit() {
					if n := c.InFlight(); n < 1 || n > 8 {
						t.Errorf("inflight out of bounds: %d", n)
						return
					}
					c.Release()
				}
			}
		}()
	}
	wg.Wait()
	if c.InFlight() != 0 {
		t.Fatalf("leaked inflight: %d", c.InFlight())
	}
}

func TestRateAccuracy(t *testing.T) {
	c := New(1000, 1, 0) // 1000/s
	start := time.Now()
	admitted := 0
	for time.Since(start) < 300*time.Millisecond {
		if c.Admit() {
			admitted++
		}
	}
	// Expect ~300 admitted over 300ms at 1000/s; allow wide CI noise.
	if admitted < 100 || admitted > 600 {
		t.Fatalf("admitted %d in 300ms at 1000/s", admitted)
	}
}

func TestQueueDelayEWMA(t *testing.T) {
	c := New(0, 1, 0)
	if c.QueueDelayEstimate() != 0 {
		t.Fatalf("fresh estimate = %d", c.QueueDelayEstimate())
	}
	c.ObserveQueueDelay(1000)
	if got := c.QueueDelayEstimate(); got != 1000 {
		t.Fatalf("first sample must seed the estimate, got %d", got)
	}
	c.ObserveQueueDelay(2000)
	// 1000 + 0.2*(2000-1000) = 1200
	if got := c.QueueDelayEstimate(); got != 1200 {
		t.Fatalf("EWMA after second sample = %d, want 1200", got)
	}
	c.ObserveQueueDelay(-50) // negative observations clamp to zero
	if got := c.QueueDelayEstimate(); got >= 1200 || got < 0 {
		t.Fatalf("EWMA after clamped sample = %d", got)
	}
}

func TestAdmitDeadline(t *testing.T) {
	c := New(0, 1, 0)
	// No deadline: always admitted.
	if !c.AdmitDeadline(0) {
		t.Fatal("no-deadline request rejected")
	}
	// Feasible deadline far in the future.
	if !c.AdmitDeadline(clock.Nanos() + int64(time.Hour)) {
		t.Fatal("feasible deadline rejected")
	}
	// Teach the controller a 10ms queue delay; a 1ms-out deadline is then a
	// certain miss.
	for i := 0; i < 50; i++ {
		c.ObserveQueueDelay(int64(10 * time.Millisecond))
	}
	if c.AdmitDeadline(clock.Nanos() + int64(time.Millisecond)) {
		t.Fatal("certain-miss deadline admitted")
	}
	if got := c.DeadlineRejected(); got != 1 {
		t.Fatalf("DeadlineRejected = %d", got)
	}
	if _, rejected := c.Stats(); rejected != 1 {
		t.Fatalf("deadline shed not counted in Stats rejected: %d", rejected)
	}
	// A deadline beyond the estimate still gets in.
	if !c.AdmitDeadline(clock.Nanos() + int64(time.Second)) {
		t.Fatal("slack deadline rejected")
	}
}

func TestConcurrentObserveQueueDelay(t *testing.T) {
	c := New(0, 1, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				c.ObserveQueueDelay(1000)
			}
		}()
	}
	wg.Wait()
	if got := c.QueueDelayEstimate(); got != 1000 {
		t.Fatalf("constant observations must converge exactly, got %d", got)
	}
}
