package admission

import (
	"sync"
	"testing"
	"time"
)

func TestUnlimited(t *testing.T) {
	c := New(0, 1, 0)
	for i := 0; i < 1000; i++ {
		if !c.Admit() {
			t.Fatal("unlimited controller rejected")
		}
	}
	a, r := c.Stats()
	if a != 1000 || r != 0 {
		t.Fatalf("stats = %d/%d", a, r)
	}
}

func TestBurstThenRateLimit(t *testing.T) {
	c := New(10, 5, 0) // 10/s, burst 5
	admitted := 0
	for i := 0; i < 20; i++ {
		if c.Admit() {
			admitted++
		}
	}
	if admitted < 5 || admitted > 7 {
		t.Fatalf("instant burst admitted %d, want ~5", admitted)
	}
	// After 300ms, ~3 more tokens accrue.
	time.Sleep(300 * time.Millisecond)
	more := 0
	for i := 0; i < 20; i++ {
		if c.Admit() {
			more++
		}
	}
	if more < 1 || more > 6 {
		t.Fatalf("refill admitted %d, want ~3", more)
	}
}

func TestInFlightCap(t *testing.T) {
	c := New(0, 1, 3)
	for i := 0; i < 3; i++ {
		if !c.Admit() {
			t.Fatalf("admit %d failed", i)
		}
	}
	if c.Admit() {
		t.Fatal("admitted above cap")
	}
	if c.InFlight() != 3 {
		t.Fatalf("inflight = %d", c.InFlight())
	}
	c.Release()
	if !c.Admit() {
		t.Fatal("admit after release failed")
	}
	_, rejected := c.Stats()
	if rejected != 1 {
		t.Fatalf("rejected = %d", rejected)
	}
}

func TestReleaseWithoutAdmitPanics(t *testing.T) {
	c := New(0, 1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Release()
}

func TestConcurrentAdmitRelease(t *testing.T) {
	c := New(0, 1, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				if c.Admit() {
					if n := c.InFlight(); n < 1 || n > 8 {
						t.Errorf("inflight out of bounds: %d", n)
						return
					}
					c.Release()
				}
			}
		}()
	}
	wg.Wait()
	if c.InFlight() != 0 {
		t.Fatalf("leaked inflight: %d", c.InFlight())
	}
}

func TestRateAccuracy(t *testing.T) {
	c := New(1000, 1, 0) // 1000/s
	start := time.Now()
	admitted := 0
	for time.Since(start) < 300*time.Millisecond {
		if c.Admit() {
			admitted++
		}
	}
	// Expect ~300 admitted over 300ms at 1000/s; allow wide CI noise.
	if admitted < 100 || admitted > 600 {
		t.Fatalf("admitted %d in 300ms at 1000/s", admitted)
	}
}
