// Package admission implements the admission-control component that feeds
// PreemptDB's scheduling thread (paper §4.1 mentions the scheduler obtaining
// transactions "from an admission control component"). It combines a
// token-bucket arrival-rate limit with an in-flight concurrency cap, so an
// open-loop client flood is shaped into the bounded stream the scheduler's
// queues are sized for.
package admission

import (
	"math"
	"sync"
	"sync/atomic"

	"preemptdb/internal/clock"
)

// Controller shapes an incoming request stream. The zero value admits
// nothing; construct with New. Safe for concurrent use.
type Controller struct {
	mu     sync.Mutex
	tokens float64
	last   int64 // clock.Nanos of the previous refill

	rate  float64 // tokens per second; <= 0 means unlimited rate
	burst float64

	maxInFlight int64 // <= 0 means unlimited concurrency
	inFlight    atomic.Int64

	admitted atomic.Uint64
	rejected atomic.Uint64

	// queueDelayBits is the EWMA of observed scheduling latency (nanoseconds,
	// stored as float64 bits and updated by CAS). AdmitDeadline uses it to
	// shed requests whose deadline is certain to be missed before they would
	// even reach a worker.
	queueDelayBits   atomic.Uint64
	deadlineRejected atomic.Uint64
}

// queueDelayAlpha weights new queue-delay observations into the EWMA. 0.2
// tracks load shifts within a handful of requests without jittering on a
// single outlier.
const queueDelayAlpha = 0.2

// New returns a controller admitting up to rate requests/second with the
// given burst, and at most maxInFlight admitted-but-unreleased requests.
// Pass rate <= 0 for no rate limit and maxInFlight <= 0 for no concurrency
// cap.
func New(rate float64, burst int, maxInFlight int) *Controller {
	if burst < 1 {
		burst = 1
	}
	return &Controller{
		tokens:      float64(burst),
		last:        clock.Nanos(),
		rate:        rate,
		burst:       float64(burst),
		maxInFlight: int64(maxInFlight),
	}
}

// Admit reports whether one request may enter the system. Every admitted
// request must eventually call Release.
func (c *Controller) Admit() bool {
	if c.maxInFlight > 0 {
		if c.inFlight.Add(1) > c.maxInFlight {
			c.inFlight.Add(-1)
			c.rejected.Add(1)
			return false
		}
	}
	if c.rate > 0 && !c.takeToken() {
		if c.maxInFlight > 0 {
			c.inFlight.Add(-1)
		}
		c.rejected.Add(1)
		return false
	}
	c.admitted.Add(1)
	return true
}

func (c *Controller) takeToken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := clock.Nanos()
	elapsed := float64(now-c.last) / 1e9
	c.last = now
	c.tokens += elapsed * c.rate
	if c.tokens > c.burst {
		c.tokens = c.burst
	}
	if c.tokens < 1 {
		return false
	}
	c.tokens--
	return true
}

// Release returns an in-flight slot; call once per admitted request when it
// completes (or is dropped downstream).
func (c *Controller) Release() {
	if c.maxInFlight > 0 {
		if n := c.inFlight.Add(-1); n < 0 {
			panic("admission: Release without matching Admit")
		}
	}
}

// InFlight returns the number of admitted, unreleased requests.
func (c *Controller) InFlight() int64 { return c.inFlight.Load() }

// ObserveQueueDelay feeds one observed scheduling latency (enqueue→start, in
// nanoseconds) into the controller's queue-delay estimate.
func (c *Controller) ObserveQueueDelay(nanos int64) {
	if nanos < 0 {
		nanos = 0
	}
	for {
		old := c.queueDelayBits.Load()
		est := math.Float64frombits(old)
		if old == 0 {
			est = float64(nanos) // first sample seeds the estimate
		} else {
			est += queueDelayAlpha * (float64(nanos) - est)
		}
		if c.queueDelayBits.CompareAndSwap(old, math.Float64bits(est)) {
			return
		}
	}
}

// QueueDelayEstimate returns the current queue-delay EWMA in nanoseconds
// (0 until the first observation).
func (c *Controller) QueueDelayEstimate() int64 {
	return int64(math.Float64frombits(c.queueDelayBits.Load()))
}

// AdmitDeadline is Admit for a request carrying an absolute deadline
// (clock.Nanos; 0 means none): when the observed queue delay implies the
// deadline will be missed before the request even starts, it is shed here —
// cheaper than letting the scheduler drop it at dispatch, and it keeps the
// doomed request from occupying queue capacity. Deadline sheds are counted
// in both Stats' rejected and DeadlineRejected.
func (c *Controller) AdmitDeadline(deadline int64) bool {
	if deadline != 0 && clock.Nanos()+c.QueueDelayEstimate() > deadline {
		c.deadlineRejected.Add(1)
		c.rejected.Add(1)
		return false
	}
	return c.Admit()
}

// DeadlineRejected returns how many requests were shed because their
// deadline could not be met given the observed queue delay.
func (c *Controller) DeadlineRejected() uint64 { return c.deadlineRejected.Load() }

// Stats returns the cumulative admitted and rejected counts.
func (c *Controller) Stats() (admitted, rejected uint64) {
	return c.admitted.Load(), c.rejected.Load()
}
