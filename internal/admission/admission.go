// Package admission implements the admission-control component that feeds
// PreemptDB's scheduling thread (paper §4.1 mentions the scheduler obtaining
// transactions "from an admission control component"). It combines a
// token-bucket arrival-rate limit with an in-flight concurrency cap, so an
// open-loop client flood is shaped into the bounded stream the scheduler's
// queues are sized for.
package admission

import (
	"sync"
	"sync/atomic"

	"preemptdb/internal/clock"
)

// Controller shapes an incoming request stream. The zero value admits
// nothing; construct with New. Safe for concurrent use.
type Controller struct {
	mu     sync.Mutex
	tokens float64
	last   int64 // clock.Nanos of the previous refill

	rate  float64 // tokens per second; <= 0 means unlimited rate
	burst float64

	maxInFlight int64 // <= 0 means unlimited concurrency
	inFlight    atomic.Int64

	admitted atomic.Uint64
	rejected atomic.Uint64
}

// New returns a controller admitting up to rate requests/second with the
// given burst, and at most maxInFlight admitted-but-unreleased requests.
// Pass rate <= 0 for no rate limit and maxInFlight <= 0 for no concurrency
// cap.
func New(rate float64, burst int, maxInFlight int) *Controller {
	if burst < 1 {
		burst = 1
	}
	return &Controller{
		tokens:      float64(burst),
		last:        clock.Nanos(),
		rate:        rate,
		burst:       float64(burst),
		maxInFlight: int64(maxInFlight),
	}
}

// Admit reports whether one request may enter the system. Every admitted
// request must eventually call Release.
func (c *Controller) Admit() bool {
	if c.maxInFlight > 0 {
		if c.inFlight.Add(1) > c.maxInFlight {
			c.inFlight.Add(-1)
			c.rejected.Add(1)
			return false
		}
	}
	if c.rate > 0 && !c.takeToken() {
		if c.maxInFlight > 0 {
			c.inFlight.Add(-1)
		}
		c.rejected.Add(1)
		return false
	}
	c.admitted.Add(1)
	return true
}

func (c *Controller) takeToken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := clock.Nanos()
	elapsed := float64(now-c.last) / 1e9
	c.last = now
	c.tokens += elapsed * c.rate
	if c.tokens > c.burst {
		c.tokens = c.burst
	}
	if c.tokens < 1 {
		return false
	}
	c.tokens--
	return true
}

// Release returns an in-flight slot; call once per admitted request when it
// completes (or is dropped downstream).
func (c *Controller) Release() {
	if c.maxInFlight > 0 {
		if n := c.inFlight.Add(-1); n < 0 {
			panic("admission: Release without matching Admit")
		}
	}
}

// InFlight returns the number of admitted, unreleased requests.
func (c *Controller) InFlight() int64 { return c.inFlight.Load() }

// Stats returns the cumulative admitted and rejected counts.
func (c *Controller) Stats() (admitted, rejected uint64) {
	return c.admitted.Load(), c.rejected.Load()
}
