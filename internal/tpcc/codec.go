// Package tpcc implements the TPC-C workload (spec rev 5.11) over the
// PreemptDB storage engine: schema, deterministic loader, and the five
// transaction profiles. NewOrder and Payment serve as the paper's short,
// high-priority transactions (§6.1); the full mix drives the overhead and
// scalability experiments (fig8, fig9).
//
// Monetary amounts are int64 cents throughout so consistency invariants
// (e.g. W_YTD = ΣD_YTD) hold exactly.
package tpcc

import (
	"encoding/binary"
	"math"
)

// enc appends fixed-layout fields to a row buffer.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.b = binary.LittleEndian.AppendUint64(e.b, uint64(v)) }
func (e *enc) f64(v float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.b = binary.AppendUvarint(e.b, uint64(len(s)))
	e.b = append(e.b, s...)
}

// dec reads fields written by enc, in the same order.
type dec struct{ b []byte }

func (d *dec) u8() uint8 {
	v := d.b[0]
	d.b = d.b[1:]
	return v
}
func (d *dec) u32() uint32 {
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}
func (d *dec) u64() uint64 {
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}
func (d *dec) i64() int64 { return int64(d.u64()) }
func (d *dec) f64() float64 {
	return math.Float64frombits(d.u64())
}
func (d *dec) str() string {
	n, w := binary.Uvarint(d.b)
	d.b = d.b[w:]
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}
