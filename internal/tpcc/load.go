package tpcc

import (
	"fmt"

	"preemptdb/internal/engine"
	"preemptdb/internal/rng"
)

// ScaleConfig controls database population. The TPC-C specification values
// are the defaults; tests and single-core benchmarks shrink Customers and
// Items to keep load times reasonable without changing transaction logic.
type ScaleConfig struct {
	Warehouses int // default 1
	Districts  int // per warehouse; default (and spec) 10
	Customers  int // per district; spec 3000
	Items      int // catalog size; spec 100000
	Seed       uint64
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.Warehouses == 0 {
		c.Warehouses = 1
	}
	if c.Districts == 0 {
		c.Districts = 10
	}
	if c.Customers == 0 {
		c.Customers = 3000
	}
	if c.Items == 0 {
		c.Items = 100000
	}
	if c.Seed == 0 {
		c.Seed = 0x7065_7264 // "perd"
	}
	return c
}

// Load populates a freshly-created TPC-C schema per the specification's
// initial database state (one committed transaction per warehouse plus one
// for the item catalog, so loading interleaves cleanly with nothing).
func Load(e *engine.Engine, cfg ScaleConfig) (ScaleConfig, error) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)

	items := e.MustTable(TabItem)
	tx := e.Begin(nil)
	for i := 1; i <= cfg.Items; i++ {
		it := Item{
			ID:    uint32(i),
			ImID:  uint32(r.IntRange(1, 10000)),
			Name:  r.AString(14, 24),
			Price: int64(r.IntRange(100, 10000)),
			Data:  itemData(r),
		}
		if err := tx.Insert(items, ItemKey(it.ID), it.Encode()); err != nil {
			return cfg, fmt.Errorf("load item %d: %w", i, err)
		}
	}
	if err := tx.Commit(); err != nil {
		return cfg, err
	}

	for w := 1; w <= cfg.Warehouses; w++ {
		if err := loadWarehouse(e, cfg, r.Split(), uint32(w)); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// itemData is an a-string with ~10% chance of containing "ORIGINAL".
func itemData(r *rng.Rand) string {
	s := r.AString(26, 50)
	if r.Intn(10) == 0 {
		pos := r.Intn(len(s) - 8)
		s = s[:pos] + "ORIGINAL" + s[pos+8:]
	}
	return s
}

func loadWarehouse(e *engine.Engine, cfg ScaleConfig, r *rng.Rand, w uint32) error {
	warehouses := e.MustTable(TabWarehouse)
	districts := e.MustTable(TabDistrict)
	customers := e.MustTable(TabCustomer)
	history := e.MustTable(TabHistory)
	orders := e.MustTable(TabOrders)
	neworder := e.MustTable(TabNewOrder)
	orderline := e.MustTable(TabOrderLine)
	stock := e.MustTable(TabStock)

	tx := e.Begin(nil)
	wh := Warehouse{
		ID: w, Name: r.AString(6, 10),
		Street1: r.AString(10, 20), Street2: r.AString(10, 20),
		City: r.AString(10, 20), State: r.AString(2, 2), Zip: r.NString(4, 4) + "11111",
		Tax: float64(r.IntRange(0, 2000)) / 10000,
		// Spec value 300,000.00 assumes 10 districts at 30,000.00 each; keep
		// the W_YTD = ΣD_YTD consistency condition under scaled-down loads.
		YTD: int64(cfg.Districts) * 30_000_00,
	}
	if err := tx.Insert(warehouses, WarehouseKey(w), wh.Encode()); err != nil {
		return err
	}

	for i := 1; i <= cfg.Items; i++ {
		st := Stock{
			IID: uint32(i), WID: w,
			Quantity: int32(r.IntRange(10, 100)),
			YTD:      0, OrderCnt: 0, RemoteCnt: 0,
			Data: itemData(r),
		}
		for d := range st.Dists {
			st.Dists[d] = r.AString(24, 24)
		}
		if err := tx.Insert(stock, StockKey(w, uint32(i)), st.Encode()); err != nil {
			return err
		}
	}

	var hseq uint64
	for d := 1; d <= cfg.Districts; d++ {
		dist := District{
			ID: uint32(d), WID: w, Name: r.AString(6, 10),
			Street1: r.AString(10, 20), Street2: r.AString(10, 20),
			City: r.AString(10, 20), State: r.AString(2, 2), Zip: r.NString(4, 4) + "11111",
			Tax: float64(r.IntRange(0, 2000)) / 10000,
			YTD: 30_000_00,
			// Initial orders are pre-loaded below; NextOID continues after.
			NextOID: uint32(cfg.Customers) + 1,
		}
		if err := tx.Insert(districts, DistrictKey(w, uint32(d)), dist.Encode()); err != nil {
			return err
		}

		for c := 1; c <= cfg.Customers; c++ {
			last := rng.LastName(lastNameNumber(r, c, cfg.Customers))
			cust := Customer{
				ID: uint32(c), DID: uint32(d), WID: w,
				First: r.AString(8, 16), Middle: "OE", Last: last,
				Street1: r.AString(10, 20), Street2: r.AString(10, 20),
				City: r.AString(10, 20), State: r.AString(2, 2), Zip: r.NString(4, 4) + "11111",
				Phone: r.NString(16, 16), Since: 0,
				Credit:    pick(r, 10, "BC", "GC"),
				CreditLim: 50_000_00,
				Discount:  float64(r.IntRange(0, 5000)) / 10000,
				Balance:   -10_00, YTDPayment: 10_00, PaymentCnt: 1,
				Data: r.AString(300, 500),
			}
			if err := tx.Insert(customers, CustomerKey(w, uint32(d), uint32(c)), cust.Encode()); err != nil {
				return err
			}
			hseq++
			h := History{
				CID: uint32(c), CDID: uint32(d), CWID: w, DID: uint32(d), WID: w,
				Amount: 10_00, Data: r.AString(12, 24),
			}
			if err := tx.Insert(history, HistoryKey(w, uint32(d), uint32(c), hseq), h.Encode()); err != nil {
				return err
			}
		}

		// Initial orders: one per customer in a random permutation; the most
		// recent third are undelivered (rows in new_order).
		perm := r.Split()
		cids := permutation(perm, cfg.Customers)
		for o := 1; o <= cfg.Customers; o++ {
			olCnt := uint32(r.IntRange(5, 15))
			ord := Order{
				ID: uint32(o), DID: uint32(d), WID: w, CID: uint32(cids[o-1]),
				OLCnt: olCnt, AllLocal: 1,
			}
			delivered := o <= cfg.Customers*2/3
			if delivered {
				ord.CarrierID = uint32(r.IntRange(1, 10))
			}
			if err := tx.Insert(orders, OrderKey(w, uint32(d), uint32(o)), ord.Encode()); err != nil {
				return err
			}
			if !delivered {
				no := NewOrderRow{OID: uint32(o), DID: uint32(d), WID: w}
				if err := tx.Insert(neworder, NewOrderKey(w, uint32(d), uint32(o)), no.Encode()); err != nil {
					return err
				}
			}
			for n := uint32(1); n <= olCnt; n++ {
				ol := OrderLine{
					OID: uint32(o), DID: uint32(d), WID: w, Number: n,
					IID: uint32(r.IntRange(1, cfg.Items)), SupplyWID: w,
					Quantity: 5, DistInfo: r.AString(24, 24),
				}
				if delivered {
					ol.DeliveryD = 1
				} else {
					ol.Amount = int64(r.IntRange(1, 999999))
				}
				if err := tx.Insert(orderline, OrderLineKey(w, uint32(d), uint32(o), n), ol.Encode()); err != nil {
					return err
				}
			}
		}
	}
	return tx.Commit()
}

// lastNameNumber picks the spec's last-name number: NURand(255,0,999) for
// large districts, or a cycling assignment for scaled-down ones so by-name
// lookups still find rows.
func lastNameNumber(r *rng.Rand, c, customersPerDistrict int) int {
	if customersPerDistrict >= 1000 {
		if c <= 1000 {
			return c - 1
		}
		return r.NURand(255, 0, 999)
	}
	return (c - 1) % 1000
}

func pick(r *rng.Rand, pctFirst int, first, second string) string {
	if r.IntRange(1, 100) <= pctFirst {
		return first
	}
	return second
}

func permutation(r *rng.Rand, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i + 1
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
