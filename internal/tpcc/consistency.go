package tpcc

import "fmt"

// CheckConsistency validates the TPC-C consistency conditions (spec §3.3.2,
// conditions 1–4) against the current committed state, returning the first
// violation found. It is the end-to-end correctness oracle for scheduling
// experiments: whatever the preemption machinery did, these invariants must
// hold afterwards.
//
//	1. W_YTD = Σ D_YTD                            (per warehouse)
//	2. D_NEXT_O_ID - 1 = max(O_ID) = max(NO_O_ID) (per district)
//	3. NO_O_IDs are contiguous                    (per district)
//	4. Σ O_OL_CNT = count(order lines)            (per district)
func (c *Client) CheckConsistency() error {
	tx := c.e.Begin(nil)
	defer tx.Abort()

	for w := 1; w <= c.cfg.Warehouses; w++ {
		wid := uint32(w)
		wRow, err := tx.Get(c.warehouses, WarehouseKey(wid))
		if err != nil {
			return fmt.Errorf("tpcc: warehouse %d missing: %w", w, err)
		}
		wh := DecodeWarehouse(wRow)
		var ytdSum int64

		for d := 1; d <= c.cfg.Districts; d++ {
			did := uint32(d)
			dRow, err := tx.Get(c.districts, DistrictKey(wid, did))
			if err != nil {
				return fmt.Errorf("tpcc: district %d.%d missing: %w", w, d, err)
			}
			dist := DecodeDistrict(dRow)
			ytdSum += dist.YTD

			// Condition 2 + 4 scans.
			var maxOID uint32
			var olCntSum uint64
			if err := tx.Scan(c.orders, OrderKey(wid, did, 0), OrderKey(wid, did+1, 0),
				func(_, row []byte) bool {
					o := DecodeOrder(row)
					maxOID = o.ID
					olCntSum += uint64(o.OLCnt)
					return true
				}); err != nil {
				return err
			}
			if dist.NextOID != maxOID+1 {
				return fmt.Errorf("tpcc: condition 2 violated at %d.%d: next_o_id=%d max(o_id)=%d",
					w, d, dist.NextOID, maxOID)
			}

			// Condition 2 (new_order part) + 3.
			var noMin, noMax uint32
			var noCount int
			if err := tx.Scan(c.neworder, NewOrderKey(wid, did, 0), NewOrderKey(wid, did+1, 0),
				func(_, row []byte) bool {
					no := DecodeNewOrder(row)
					if noCount == 0 {
						noMin = no.OID
					}
					noMax = no.OID
					noCount++
					return true
				}); err != nil {
				return err
			}
			if noCount > 0 {
				if noMax != maxOID {
					return fmt.Errorf("tpcc: condition 2 violated at %d.%d: max(no_o_id)=%d max(o_id)=%d",
						w, d, noMax, maxOID)
				}
				if int(noMax-noMin)+1 != noCount {
					return fmt.Errorf("tpcc: condition 3 violated at %d.%d: [%d,%d] has %d rows",
						w, d, noMin, noMax, noCount)
				}
			}

			var olCount uint64
			if err := tx.Scan(c.orderline, OrderLineKey(wid, did, 0, 0), OrderLineKey(wid, did+1, 0, 0),
				func(_, _ []byte) bool {
					olCount++
					return true
				}); err != nil {
				return err
			}
			if olCntSum != olCount {
				return fmt.Errorf("tpcc: condition 4 violated at %d.%d: Σol_cnt=%d order lines=%d",
					w, d, olCntSum, olCount)
			}
		}
		if wh.YTD != ytdSum {
			return fmt.Errorf("tpcc: condition 1 violated at warehouse %d: w_ytd=%d Σd_ytd=%d",
				w, wh.YTD, ytdSum)
		}
	}
	return nil
}
