package tpcc

import (
	"errors"
	"testing"

	"preemptdb/internal/engine"
	"preemptdb/internal/keys"
	"preemptdb/internal/rng"
)

// testScale keeps load times tiny while exercising all code paths.
var testScale = ScaleConfig{Warehouses: 2, Districts: 3, Customers: 20, Items: 100, Seed: 42}

func loadedClient(t *testing.T) *Client {
	t.Helper()
	e := engine.New(engine.Config{})
	CreateSchema(e)
	cfg, err := Load(e, testScale)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return NewClient(e, cfg)
}

// ytdInvariant checks the TPC-C consistency condition W_YTD = ΣD_YTD per
// warehouse (condition 1 of the spec's consistency requirements).
func ytdInvariant(t *testing.T, c *Client) {
	t.Helper()
	tx := c.e.Begin(nil)
	defer tx.Abort()
	for w := 1; w <= c.cfg.Warehouses; w++ {
		wRow, err := tx.Get(c.warehouses, WarehouseKey(uint32(w)))
		if err != nil {
			t.Fatalf("warehouse %d: %v", w, err)
		}
		wh := DecodeWarehouse(wRow)
		var sum int64
		for d := 1; d <= c.cfg.Districts; d++ {
			dRow, err := tx.Get(c.districts, DistrictKey(uint32(w), uint32(d)))
			if err != nil {
				t.Fatal(err)
			}
			sum += DecodeDistrict(dRow).YTD
		}
		if wh.YTD != sum {
			t.Fatalf("warehouse %d: W_YTD=%d ΣD_YTD=%d", w, wh.YTD, sum)
		}
	}
}

// nextOIDInvariant checks D_NEXT_O_ID-1 = max(O_ID) per district
// (consistency condition 2).
func nextOIDInvariant(t *testing.T, c *Client) {
	t.Helper()
	tx := c.e.Begin(nil)
	defer tx.Abort()
	for w := 1; w <= c.cfg.Warehouses; w++ {
		for d := 1; d <= c.cfg.Districts; d++ {
			dRow, err := tx.Get(c.districts, DistrictKey(uint32(w), uint32(d)))
			if err != nil {
				t.Fatal(err)
			}
			next := DecodeDistrict(dRow).NextOID
			var maxO uint32
			from := OrderKey(uint32(w), uint32(d), 0)
			to := OrderKey(uint32(w), uint32(d)+1, 0)
			tx.Scan(c.orders, from, to, func(_, row []byte) bool {
				maxO = DecodeOrder(row).ID
				return true
			})
			if next != maxO+1 {
				t.Fatalf("w%d d%d: next=%d maxO=%d", w, d, next, maxO)
			}
		}
	}
}

func TestLoadInitialState(t *testing.T) {
	c := loadedClient(t)
	ytdInvariant(t, c)
	nextOIDInvariant(t, c)

	tx := c.e.Begin(nil)
	defer tx.Abort()
	// Catalog size.
	n := 0
	tx.Scan(c.items, nil, nil, func(_, _ []byte) bool { n++; return true })
	if n != testScale.Items {
		t.Fatalf("items = %d", n)
	}
	// One stock row per (warehouse, item).
	n = 0
	tx.Scan(c.stock, nil, nil, func(_, _ []byte) bool { n++; return true })
	if n != testScale.Items*testScale.Warehouses {
		t.Fatalf("stock = %d", n)
	}
	// Customers per district, reachable by name index.
	n = 0
	tx.Scan(c.customers, nil, nil, func(_, _ []byte) bool { n++; return true })
	if n != testScale.Warehouses*testScale.Districts*testScale.Customers {
		t.Fatalf("customers = %d", n)
	}
	// Orders preloaded: one per customer; last third undelivered.
	n = 0
	tx.Scan(c.orders, nil, nil, func(_, _ []byte) bool { n++; return true })
	if n != testScale.Warehouses*testScale.Districts*testScale.Customers {
		t.Fatalf("orders = %d", n)
	}
	undelivered := 0
	tx.Scan(c.neworder, nil, nil, func(_, _ []byte) bool { undelivered++; return true })
	wantUndelivered := testScale.Warehouses * testScale.Districts *
		(testScale.Customers - testScale.Customers*2/3)
	if undelivered != wantUndelivered {
		t.Fatalf("new orders = %d, want %d", undelivered, wantUndelivered)
	}
}

func TestNewOrderCreatesRows(t *testing.T) {
	c := loadedClient(t)
	r := rng.New(7)
	tx := c.e.Begin(nil)
	before := DecodeDistrict(mustGet(t, tx, c.districts, DistrictKey(1, 1)))
	tx.Abort()

	// Run until district 1 gets an order (district choice is random).
	var after District
	for i := 0; i < 200; i++ {
		if err := c.NewOrder(nil, r, 1); err != nil && !errors.Is(err, ErrUserAbort) {
			t.Fatalf("neworder: %v", err)
		}
		tx := c.e.Begin(nil)
		after = DecodeDistrict(mustGet(t, tx, c.districts, DistrictKey(1, 1)))
		tx.Abort()
		if after.NextOID > before.NextOID {
			break
		}
	}
	if after.NextOID <= before.NextOID {
		t.Fatal("district 1 never received an order")
	}
	oid := after.NextOID - 1
	tx2 := c.e.Begin(nil)
	defer tx2.Abort()
	ord := DecodeOrder(mustGet(t, tx2, c.orders, OrderKey(1, 1, oid)))
	if ord.OLCnt < 5 || ord.OLCnt > 15 {
		t.Fatalf("ol_cnt = %d", ord.OLCnt)
	}
	// Every order line must exist with a positive amount.
	lines := 0
	tx2.Scan(c.orderline, OrderLineKey(1, 1, oid, 0), OrderLineKey(1, 1, oid+1, 0),
		func(_, row []byte) bool {
			ol := DecodeOrderLine(row)
			if ol.Amount <= 0 {
				t.Errorf("line %d amount %d", ol.Number, ol.Amount)
			}
			lines++
			return true
		})
	if uint32(lines) != ord.OLCnt {
		t.Fatalf("lines = %d, want %d", lines, ord.OLCnt)
	}
	// The new_order row must exist.
	if _, err := tx2.Get(c.neworder, NewOrderKey(1, 1, oid)); err != nil {
		t.Fatalf("new_order row: %v", err)
	}
	nextOIDInvariant(t, c)
}

func TestNewOrderUserAbortRollsBack(t *testing.T) {
	c := loadedClient(t)
	r := rng.New(1)
	aborts, runs := 0, 0
	for i := 0; i < 600 && aborts == 0; i++ {
		err := c.NewOrder(nil, r, 1)
		runs++
		if errors.Is(err, ErrUserAbort) {
			aborts++
		} else if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if aborts == 0 {
		t.Fatalf("no user abort in %d runs (expected ~1%%)", runs)
	}
	nextOIDInvariant(t, c) // rollback must not leak a NextOID bump
	ytdInvariant(t, c)
}

func TestPaymentMaintainsYTD(t *testing.T) {
	c := loadedClient(t)
	r := rng.New(3)
	for i := 0; i < 50; i++ {
		if err := c.Payment(nil, r, uint32(1+i%testScale.Warehouses)); err != nil {
			t.Fatalf("payment %d: %v", i, err)
		}
	}
	ytdInvariant(t, c)

	// History rows must have been inserted.
	tx := c.e.Begin(nil)
	defer tx.Abort()
	n := 0
	tx.Scan(c.history, nil, nil, func(_, _ []byte) bool { n++; return true })
	preloaded := testScale.Warehouses * testScale.Districts * testScale.Customers
	if n != preloaded+50 {
		t.Fatalf("history rows = %d, want %d", n, preloaded+50)
	}
}

func TestPaymentByNameFindsCustomer(t *testing.T) {
	c := loadedClient(t)
	// Force by-name path repeatedly; all runs must succeed.
	r := rng.New(5)
	for i := 0; i < 100; i++ {
		if err := c.Payment(nil, r, 1); err != nil {
			t.Fatalf("payment %d: %v", i, err)
		}
	}
}

func TestOrderStatus(t *testing.T) {
	c := loadedClient(t)
	r := rng.New(9)
	for i := 0; i < 50; i++ {
		if err := c.OrderStatus(nil, r, 1); err != nil {
			t.Fatalf("orderstatus %d: %v", i, err)
		}
	}
	if c.e.Commits() == 0 {
		t.Fatal("no commits")
	}
}

func TestDeliveryDrainsNewOrders(t *testing.T) {
	c := loadedClient(t)
	r := rng.New(11)
	countNew := func() int {
		tx := c.e.Begin(nil)
		defer tx.Abort()
		n := 0
		from := NewOrderKey(1, 0, 0)
		to := NewOrderKey(2, 0, 0)
		tx.Scan(c.neworder, from, to, func(_, _ []byte) bool { n++; return true })
		return n
	}
	before := countNew()
	if before == 0 {
		t.Fatal("no undelivered orders preloaded")
	}
	if err := c.Delivery(nil, r, 1); err != nil {
		t.Fatalf("delivery: %v", err)
	}
	after := countNew()
	if after != before-testScale.Districts {
		t.Fatalf("new orders %d -> %d, want -%d", before, after, testScale.Districts)
	}
	// Delivered orders must have a carrier and delivered lines.
	tx := c.e.Begin(nil)
	defer tx.Abort()
	ord := DecodeOrder(mustGet(t, tx, c.orders, OrderKey(1, 1, uint32(testScale.Customers*2/3+1))))
	if ord.CarrierID == 0 {
		t.Fatal("delivered order has no carrier")
	}
}

func TestStockLevel(t *testing.T) {
	c := loadedClient(t)
	r := rng.New(13)
	for i := 0; i < 20; i++ {
		if err := c.StockLevel(nil, r, 2); err != nil {
			t.Fatalf("stocklevel %d: %v", i, err)
		}
	}
}

func TestStandardMixMaintainsInvariants(t *testing.T) {
	c := loadedClient(t)
	r := rng.New(17)
	counts := map[MixOutcome]int{}
	for i := 0; i < 300; i++ {
		kind := PickMix(r)
		counts[kind]++
		w := uint32(r.IntRange(1, testScale.Warehouses))
		if err := c.Run(kind, nil, r, w); err != nil && !errors.Is(err, ErrUserAbort) {
			t.Fatalf("%v: %v", kind, err)
		}
	}
	// The mix must hit every type.
	for k := TxNewOrder; k <= TxStockLevel; k++ {
		if counts[k] == 0 {
			t.Fatalf("mix never produced %v (counts %v)", k, counts)
		}
	}
	if counts[TxNewOrder] < 100 || counts[TxPayment] < 100 {
		t.Fatalf("mix skew: %v", counts)
	}
	ytdInvariant(t, c)
	nextOIDInvariant(t, c)
}

func TestMixOutcomeString(t *testing.T) {
	names := map[MixOutcome]string{
		TxNewOrder: "NewOrder", TxPayment: "Payment", TxOrderStatus: "OrderStatus",
		TxDelivery: "Delivery", TxStockLevel: "StockLevel",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d = %q", k, k.String())
		}
	}
	if MixOutcome(99).String() == "" {
		t.Error("unknown must format")
	}
	if err := (&Client{}).Run(MixOutcome(99), nil, rng.New(1), 1); err == nil {
		t.Error("unknown kind must error")
	}
}

func TestCodecRoundtrips(t *testing.T) {
	w := Warehouse{ID: 3, Name: "acme", Street1: "a", Street2: "b", City: "c",
		State: "WA", Zip: "98765", Tax: 0.12, YTD: 123456}
	if got := DecodeWarehouse(w.Encode()); got != w {
		t.Fatalf("warehouse: %+v != %+v", got, w)
	}
	d := District{ID: 1, WID: 3, Name: "d1", Tax: 0.05, YTD: 42, NextOID: 77}
	if got := DecodeDistrict(d.Encode()); got != d {
		t.Fatalf("district: %+v", got)
	}
	cu := Customer{ID: 9, DID: 1, WID: 3, First: "Jo", Middle: "OE", Last: "BARBAR",
		Credit: "GC", CreditLim: 5000000, Discount: 0.3, Balance: -1000,
		YTDPayment: 1000, PaymentCnt: 1, Data: "xyz"}
	if got := DecodeCustomer(cu.Encode()); got != cu {
		t.Fatalf("customer: %+v", got)
	}
	h := History{CID: 1, CDID: 2, CWID: 3, DID: 4, WID: 5, Date: 6, Amount: 7, Data: "h"}
	if got := DecodeHistory(h.Encode()); got != h {
		t.Fatalf("history: %+v", got)
	}
	no := NewOrderRow{OID: 1, DID: 2, WID: 3}
	if got := DecodeNewOrder(no.Encode()); got != no {
		t.Fatalf("neworder: %+v", got)
	}
	o := Order{ID: 1, DID: 2, WID: 3, CID: 4, EntryD: 5, CarrierID: 6, OLCnt: 7, AllLocal: 1}
	if got := DecodeOrder(o.Encode()); got != o {
		t.Fatalf("order: %+v", got)
	}
	ol := OrderLine{OID: 1, DID: 2, WID: 3, Number: 4, IID: 5, SupplyWID: 6,
		DeliveryD: 7, Quantity: 8, Amount: 9, DistInfo: "info"}
	if got := DecodeOrderLine(ol.Encode()); got != ol {
		t.Fatalf("orderline: %+v", got)
	}
	it := Item{ID: 1, ImID: 2, Name: "widget", Price: 999, Data: "ORIGINAL"}
	if got := DecodeItem(it.Encode()); got != it {
		t.Fatalf("item: %+v", got)
	}
	st := Stock{IID: 1, WID: 2, Quantity: -5, YTD: 10, OrderCnt: 3, RemoteCnt: 1, Data: "sd"}
	for i := range st.Dists {
		st.Dists[i] = "dist"
	}
	if got := DecodeStock(st.Encode()); got != st {
		t.Fatalf("stock: %+v", got)
	}
}

func TestCustomerNameKeyOrdering(t *testing.T) {
	// Index keys must group by (w,d,last) with first-name order inside.
	a := CustomerNameKey(1, 1, "ABLE", "alice")
	b := CustomerNameKey(1, 1, "ABLE", "bob")
	z := CustomerNameKey(1, 1, "BAR", "aaron")
	if !(string(a) < string(b) && string(b) < string(z)) {
		t.Fatal("name key ordering broken")
	}
	p := CustomerNameKey(1, 1, "ABLE", "")
	end := keys.PrefixEnd(keys.String(keys.Uint32(keys.Uint32(nil, 1), 1), "ABLE"))
	if !(string(p) < string(end)) {
		t.Fatal("prefix bound broken")
	}
}

func mustGet(t *testing.T, tx *engine.Txn, tab *engine.Table, key []byte) []byte {
	t.Helper()
	row, err := tx.Get(tab, key)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	return row
}
