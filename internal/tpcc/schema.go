package tpcc

import (
	"preemptdb/internal/engine"
	"preemptdb/internal/keys"
)

// Table names.
const (
	TabWarehouse = "tpcc.warehouse"
	TabDistrict  = "tpcc.district"
	TabCustomer  = "tpcc.customer"
	TabHistory   = "tpcc.history"
	TabNewOrder  = "tpcc.new_order"
	TabOrders    = "tpcc.orders"
	TabOrderLine = "tpcc.order_line"
	TabItem      = "tpcc.item"
	TabStock     = "tpcc.stock"

	// IdxCustomerByName supports the 60%-by-last-name Payment/OrderStatus
	// path: (w, d, last, first) → customer row.
	IdxCustomerByName = "byname"
	// IdxOrdersByCustomer supports OrderStatus's newest-order lookup:
	// (w, d, c, o) → order row.
	IdxOrdersByCustomer = "bycustomer"
)

// Warehouse is one TPC-C warehouse row.
type Warehouse struct {
	ID                        uint32
	Name                      string
	Street1, Street2          string
	City, State, Zip          string
	Tax                       float64
	YTD                       int64 // cents
}

// District is one district row.
type District struct {
	ID, WID          uint32
	Name             string
	Street1, Street2 string
	City, State, Zip string
	Tax              float64
	YTD              int64 // cents
	NextOID          uint32
}

// Customer is one customer row.
type Customer struct {
	ID, DID, WID       uint32
	First, Middle, Last string
	Street1, Street2   string
	City, State, Zip   string
	Phone              string
	Since              int64
	Credit             string // "GC" or "BC"
	CreditLim          int64  // cents
	Discount           float64
	Balance            int64 // cents
	YTDPayment         int64 // cents
	PaymentCnt         uint32
	DeliveryCnt        uint32
	Data               string
}

// History is one payment-history row.
type History struct {
	CID, CDID, CWID uint32
	DID, WID        uint32
	Date            int64
	Amount          int64 // cents
	Data            string
}

// NewOrderRow marks an undelivered order.
type NewOrderRow struct {
	OID, DID, WID uint32
}

// Order is one order header row.
type Order struct {
	ID, DID, WID uint32
	CID          uint32
	EntryD       int64
	CarrierID    uint32 // 0 = not delivered
	OLCnt        uint32
	AllLocal     uint32
}

// OrderLine is one order line row.
type OrderLine struct {
	OID, DID, WID uint32
	Number        uint32
	IID           uint32
	SupplyWID     uint32
	DeliveryD     int64
	Quantity      uint32
	Amount        int64 // cents
	DistInfo      string
}

// Item is one catalog item row.
type Item struct {
	ID    uint32
	ImID  uint32
	Name  string
	Price int64 // cents
	Data  string
}

// Stock is one stock row.
type Stock struct {
	IID, WID   uint32
	Quantity   int32
	Dists      [10]string
	YTD        uint64
	OrderCnt   uint32
	RemoteCnt  uint32
	Data       string
}

// Key builders (order-preserving composite keys).

// WarehouseKey returns the warehouse primary key.
func WarehouseKey(w uint32) []byte { return keys.Uint32(nil, w) }

// DistrictKey returns the district primary key.
func DistrictKey(w, d uint32) []byte { return keys.Uint32(keys.Uint32(nil, w), d) }

// CustomerKey returns the customer primary key.
func CustomerKey(w, d, c uint32) []byte {
	return keys.Uint32(keys.Uint32(keys.Uint32(nil, w), d), c)
}

// CustomerNameKey returns the by-name secondary key prefix (without the
// engine's primary-key uniquifier).
func CustomerNameKey(w, d uint32, last, first string) []byte {
	k := keys.Uint32(keys.Uint32(nil, w), d)
	k = keys.String(k, last)
	return keys.String(k, first)
}

// OrderKey returns the orders primary key.
func OrderKey(w, d, o uint32) []byte {
	return keys.Uint32(keys.Uint32(keys.Uint32(nil, w), d), o)
}

// OrderCustomerKey returns the by-customer secondary key prefix.
func OrderCustomerKey(w, d, c, o uint32) []byte {
	return keys.Uint32(keys.Uint32(keys.Uint32(keys.Uint32(nil, w), d), c), o)
}

// NewOrderKey returns the new_order primary key.
func NewOrderKey(w, d, o uint32) []byte { return OrderKey(w, d, o) }

// OrderLineKey returns the order_line primary key.
func OrderLineKey(w, d, o, n uint32) []byte {
	return keys.Uint32(OrderKey(w, d, o), n)
}

// ItemKey returns the item primary key.
func ItemKey(i uint32) []byte { return keys.Uint32(nil, i) }

// StockKey returns the stock primary key.
func StockKey(w, i uint32) []byte { return keys.Uint32(keys.Uint32(nil, w), i) }

// HistoryKey returns the history primary key (seq uniquifies).
func HistoryKey(w, d, c uint32, seq uint64) []byte {
	return keys.Uint64(CustomerKey(w, d, c), seq)
}

// Row codecs.

// Encode serializes the warehouse row.
func (r *Warehouse) Encode() []byte {
	var e enc
	e.u32(r.ID)
	e.str(r.Name)
	e.str(r.Street1)
	e.str(r.Street2)
	e.str(r.City)
	e.str(r.State)
	e.str(r.Zip)
	e.f64(r.Tax)
	e.i64(r.YTD)
	return e.b
}

// DecodeWarehouse deserializes a warehouse row.
func DecodeWarehouse(b []byte) Warehouse {
	d := dec{b}
	return Warehouse{
		ID: d.u32(), Name: d.str(), Street1: d.str(), Street2: d.str(),
		City: d.str(), State: d.str(), Zip: d.str(), Tax: d.f64(), YTD: d.i64(),
	}
}

// Encode serializes the district row.
func (r *District) Encode() []byte {
	var e enc
	e.u32(r.ID)
	e.u32(r.WID)
	e.str(r.Name)
	e.str(r.Street1)
	e.str(r.Street2)
	e.str(r.City)
	e.str(r.State)
	e.str(r.Zip)
	e.f64(r.Tax)
	e.i64(r.YTD)
	e.u32(r.NextOID)
	return e.b
}

// DecodeDistrict deserializes a district row.
func DecodeDistrict(b []byte) District {
	d := dec{b}
	return District{
		ID: d.u32(), WID: d.u32(), Name: d.str(), Street1: d.str(), Street2: d.str(),
		City: d.str(), State: d.str(), Zip: d.str(), Tax: d.f64(), YTD: d.i64(),
		NextOID: d.u32(),
	}
}

// Encode serializes the customer row.
func (r *Customer) Encode() []byte {
	var e enc
	e.u32(r.ID)
	e.u32(r.DID)
	e.u32(r.WID)
	e.str(r.First)
	e.str(r.Middle)
	e.str(r.Last)
	e.str(r.Street1)
	e.str(r.Street2)
	e.str(r.City)
	e.str(r.State)
	e.str(r.Zip)
	e.str(r.Phone)
	e.i64(r.Since)
	e.str(r.Credit)
	e.i64(r.CreditLim)
	e.f64(r.Discount)
	e.i64(r.Balance)
	e.i64(r.YTDPayment)
	e.u32(r.PaymentCnt)
	e.u32(r.DeliveryCnt)
	e.str(r.Data)
	return e.b
}

// DecodeCustomer deserializes a customer row.
func DecodeCustomer(b []byte) Customer {
	d := dec{b}
	return Customer{
		ID: d.u32(), DID: d.u32(), WID: d.u32(),
		First: d.str(), Middle: d.str(), Last: d.str(),
		Street1: d.str(), Street2: d.str(), City: d.str(), State: d.str(), Zip: d.str(),
		Phone: d.str(), Since: d.i64(), Credit: d.str(), CreditLim: d.i64(),
		Discount: d.f64(), Balance: d.i64(), YTDPayment: d.i64(),
		PaymentCnt: d.u32(), DeliveryCnt: d.u32(), Data: d.str(),
	}
}

// Encode serializes the history row.
func (r *History) Encode() []byte {
	var e enc
	e.u32(r.CID)
	e.u32(r.CDID)
	e.u32(r.CWID)
	e.u32(r.DID)
	e.u32(r.WID)
	e.i64(r.Date)
	e.i64(r.Amount)
	e.str(r.Data)
	return e.b
}

// DecodeHistory deserializes a history row.
func DecodeHistory(b []byte) History {
	d := dec{b}
	return History{
		CID: d.u32(), CDID: d.u32(), CWID: d.u32(), DID: d.u32(), WID: d.u32(),
		Date: d.i64(), Amount: d.i64(), Data: d.str(),
	}
}

// Encode serializes the new-order row.
func (r *NewOrderRow) Encode() []byte {
	var e enc
	e.u32(r.OID)
	e.u32(r.DID)
	e.u32(r.WID)
	return e.b
}

// DecodeNewOrder deserializes a new-order row.
func DecodeNewOrder(b []byte) NewOrderRow {
	d := dec{b}
	return NewOrderRow{OID: d.u32(), DID: d.u32(), WID: d.u32()}
}

// Encode serializes the order row.
func (r *Order) Encode() []byte {
	var e enc
	e.u32(r.ID)
	e.u32(r.DID)
	e.u32(r.WID)
	e.u32(r.CID)
	e.i64(r.EntryD)
	e.u32(r.CarrierID)
	e.u32(r.OLCnt)
	e.u32(r.AllLocal)
	return e.b
}

// DecodeOrder deserializes an order row.
func DecodeOrder(b []byte) Order {
	d := dec{b}
	return Order{
		ID: d.u32(), DID: d.u32(), WID: d.u32(), CID: d.u32(),
		EntryD: d.i64(), CarrierID: d.u32(), OLCnt: d.u32(), AllLocal: d.u32(),
	}
}

// Encode serializes the order-line row.
func (r *OrderLine) Encode() []byte {
	var e enc
	e.u32(r.OID)
	e.u32(r.DID)
	e.u32(r.WID)
	e.u32(r.Number)
	e.u32(r.IID)
	e.u32(r.SupplyWID)
	e.i64(r.DeliveryD)
	e.u32(r.Quantity)
	e.i64(r.Amount)
	e.str(r.DistInfo)
	return e.b
}

// DecodeOrderLine deserializes an order-line row.
func DecodeOrderLine(b []byte) OrderLine {
	d := dec{b}
	return OrderLine{
		OID: d.u32(), DID: d.u32(), WID: d.u32(), Number: d.u32(), IID: d.u32(),
		SupplyWID: d.u32(), DeliveryD: d.i64(), Quantity: d.u32(), Amount: d.i64(),
		DistInfo: d.str(),
	}
}

// Encode serializes the item row.
func (r *Item) Encode() []byte {
	var e enc
	e.u32(r.ID)
	e.u32(r.ImID)
	e.str(r.Name)
	e.i64(r.Price)
	e.str(r.Data)
	return e.b
}

// DecodeItem deserializes an item row.
func DecodeItem(b []byte) Item {
	d := dec{b}
	return Item{ID: d.u32(), ImID: d.u32(), Name: d.str(), Price: d.i64(), Data: d.str()}
}

// Encode serializes the stock row.
func (r *Stock) Encode() []byte {
	var e enc
	e.u32(r.IID)
	e.u32(r.WID)
	e.u32(uint32(r.Quantity))
	for _, s := range r.Dists {
		e.str(s)
	}
	e.u64(r.YTD)
	e.u32(r.OrderCnt)
	e.u32(r.RemoteCnt)
	e.str(r.Data)
	return e.b
}

// DecodeStock deserializes a stock row.
func DecodeStock(b []byte) Stock {
	d := dec{b}
	s := Stock{IID: d.u32(), WID: d.u32(), Quantity: int32(d.u32())}
	for i := range s.Dists {
		s.Dists[i] = d.str()
	}
	s.YTD = d.u64()
	s.OrderCnt = d.u32()
	s.RemoteCnt = d.u32()
	s.Data = d.str()
	return s
}

// CreateSchema creates all TPC-C tables and secondary indexes on e.
// Call once, before loading.
func CreateSchema(e *engine.Engine) {
	e.CreateTable(TabWarehouse)
	e.CreateTable(TabDistrict)
	cust := e.CreateTable(TabCustomer)
	cust.CreateIndex(IdxCustomerByName, func(pk, row []byte) []byte {
		c := DecodeCustomer(row)
		return CustomerNameKey(c.WID, c.DID, c.Last, c.First)
	})
	e.CreateTable(TabHistory)
	e.CreateTable(TabNewOrder)
	orders := e.CreateTable(TabOrders)
	orders.CreateIndex(IdxOrdersByCustomer, func(pk, row []byte) []byte {
		o := DecodeOrder(row)
		return OrderCustomerKey(o.WID, o.DID, o.CID, o.ID)
	})
	e.CreateTable(TabOrderLine)
	e.CreateTable(TabItem)
	e.CreateTable(TabStock)
}
