package tpcc

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"preemptdb/internal/engine"
	"preemptdb/internal/keys"
	"preemptdb/internal/pcontext"
	"preemptdb/internal/rng"
)

// ErrUserAbort is the spec-mandated 1% NewOrder rollback (invalid item).
// It is an expected outcome, not a failure.
var ErrUserAbort = errors.New("tpcc: simulated user abort (invalid item)")

// maxRetries bounds conflict retries per transaction call.
const maxRetries = 100

// Client executes TPC-C transactions against a loaded database. One Client
// serves all workers; per-call state comes from the caller's context and RNG.
type Client struct {
	e   *engine.Engine
	cfg ScaleConfig

	warehouses, districts, customers, history  *engine.Table
	neworder, orders, orderline, items, stock  *engine.Table

	hseq atomic.Uint64 // history primary-key uniquifier
}

// NewClient binds a client to a loaded engine.
func NewClient(e *engine.Engine, cfg ScaleConfig) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		e: e, cfg: cfg,
		warehouses: e.MustTable(TabWarehouse),
		districts:  e.MustTable(TabDistrict),
		customers:  e.MustTable(TabCustomer),
		history:    e.MustTable(TabHistory),
		neworder:   e.MustTable(TabNewOrder),
		orders:     e.MustTable(TabOrders),
		orderline:  e.MustTable(TabOrderLine),
		items:      e.MustTable(TabItem),
		stock:      e.MustTable(TabStock),
	}
}

// Scale returns the loaded scale configuration.
func (c *Client) Scale() ScaleConfig { return c.cfg }

// Engine returns the underlying storage engine.
func (c *Client) Engine() *engine.Engine { return c.e }

// retry runs body until it commits, hits a non-conflict error, or exhausts
// the retry budget. Conflict retries are part of a transaction's end-to-end
// latency, exactly as in the paper's driver. The first few retries are
// immediate (most conflicts clear as soon as the winner commits); persistent
// contention backs off exponentially with full jitter, bounded so a worker
// core is never idled for more than ~1ms per attempt.
func retry(fn func() error) error {
	const immediateRetries = 4
	const maxBackoff = time.Millisecond
	backoff := 20 * time.Microsecond
	for i := 0; i < maxRetries; i++ {
		err := fn()
		if err == nil || !engine.IsConflict(err) {
			return err
		}
		if i >= immediateRetries {
			time.Sleep(time.Duration(rand.Int64N(int64(backoff)) + 1))
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
	}
	return fmt.Errorf("tpcc: transaction exceeded %d conflict retries", maxRetries)
}

// randomWID returns a warehouse other than home when possible.
func (c *Client) randomRemoteWID(r *rng.Rand, home uint32) uint32 {
	if c.cfg.Warehouses == 1 {
		return home
	}
	for {
		w := uint32(r.IntRange(1, c.cfg.Warehouses))
		if w != home {
			return w
		}
	}
}

// NewOrder runs the New-Order transaction for the given home warehouse.
func (c *Client) NewOrder(ctx *pcontext.Context, r *rng.Rand, w uint32) error {
	did := uint32(r.IntRange(1, c.cfg.Districts))
	cid := uint32(r.NURand(1023, 1, c.cfg.Customers))
	olCnt := r.IntRange(5, 15)
	rollback := r.IntRange(1, 100) == 1

	type line struct {
		iid, supplyW, qty uint32
	}
	lines := make([]line, olCnt)
	for i := range lines {
		lines[i] = line{
			iid:     uint32(r.NURand(8191, 1, c.cfg.Items)),
			supplyW: w,
			qty:     uint32(r.IntRange(1, 10)),
		}
		if r.IntRange(1, 100) == 1 { // 1% remote supply warehouse
			lines[i].supplyW = c.randomRemoteWID(r, w)
		}
	}
	if rollback {
		lines[olCnt-1].iid = uint32(c.cfg.Items) + 999999 // unused item: forces abort
	}

	return retry(func() error {
		tx := c.e.Begin(ctx)
		defer tx.Abort()

		wRow, err := tx.Get(c.warehouses, WarehouseKey(w))
		if err != nil {
			return err
		}
		wTax := DecodeWarehouse(wRow).Tax

		dKey := DistrictKey(w, did)
		dRow, err := tx.Get(c.districts, dKey)
		if err != nil {
			return err
		}
		district := DecodeDistrict(dRow)
		oid := district.NextOID
		district.NextOID++
		if err := tx.Update(c.districts, dKey, district.Encode()); err != nil {
			return err
		}

		cRow, err := tx.Get(c.customers, CustomerKey(w, did, cid))
		if err != nil {
			return err
		}
		cust := DecodeCustomer(cRow)

		allLocal := uint32(1)
		for _, l := range lines {
			if l.supplyW != w {
				allLocal = 0
			}
		}
		ord := Order{ID: oid, DID: did, WID: w, CID: cid, OLCnt: uint32(olCnt), AllLocal: allLocal}
		if err := tx.Insert(c.orders, OrderKey(w, did, oid), ord.Encode()); err != nil {
			return err
		}
		no := NewOrderRow{OID: oid, DID: did, WID: w}
		if err := tx.Insert(c.neworder, NewOrderKey(w, did, oid), no.Encode()); err != nil {
			return err
		}

		var total int64
		for i, l := range lines {
			iRow, err := tx.Get(c.items, ItemKey(l.iid))
			if err != nil {
				if errors.Is(err, engine.ErrNotFound) && rollback && i == olCnt-1 {
					return ErrUserAbort // spec: rollback on invalid item
				}
				return err
			}
			item := DecodeItem(iRow)

			sKey := StockKey(l.supplyW, l.iid)
			sRow, err := tx.Get(c.stock, sKey)
			if err != nil {
				return err
			}
			st := DecodeStock(sRow)
			if st.Quantity >= int32(l.qty)+10 {
				st.Quantity -= int32(l.qty)
			} else {
				st.Quantity = st.Quantity - int32(l.qty) + 91
			}
			st.YTD += uint64(l.qty)
			st.OrderCnt++
			if l.supplyW != w {
				st.RemoteCnt++
			}
			if err := tx.Update(c.stock, sKey, st.Encode()); err != nil {
				return err
			}

			amount := int64(l.qty) * item.Price
			total += amount
			ol := OrderLine{
				OID: oid, DID: did, WID: w, Number: uint32(i + 1),
				IID: l.iid, SupplyWID: l.supplyW, Quantity: l.qty,
				Amount: amount, DistInfo: st.Dists[(did-1)%10],
			}
			if err := tx.Insert(c.orderline, OrderLineKey(w, did, oid, uint32(i+1)), ol.Encode()); err != nil {
				return err
			}
		}
		_ = total * int64((1+wTax+district.Tax)*(1-cust.Discount)*10000) // order total, returned to the client in a full system

		return tx.Commit()
	})
}

// lookupCustomer resolves a customer by id (40%) or last name (60%),
// returning the primary key and decoded row. Used by Payment & OrderStatus.
func (c *Client) lookupCustomer(tx *engine.Txn, r *rng.Rand, w, d uint32) ([]byte, Customer, error) {
	if r.IntRange(1, 100) <= 40 {
		cid := uint32(r.NURand(1023, 1, c.cfg.Customers))
		key := CustomerKey(w, d, cid)
		row, err := tx.Get(c.customers, key)
		if err != nil {
			return nil, Customer{}, err
		}
		return key, DecodeCustomer(row), nil
	}
	last := rng.LastName(r.NURand(255, 0, lastNameMax(c.cfg.Customers)))
	prefix := keys.String(keys.Uint32(keys.Uint32(nil, w), d), last)
	var rows []Customer
	err := tx.ScanIndex(c.customers, IdxCustomerByName, prefix, keys.PrefixEnd(prefix),
		func(_, row []byte) bool {
			rows = append(rows, DecodeCustomer(row))
			return true
		})
	if err != nil {
		return nil, Customer{}, err
	}
	if len(rows) == 0 {
		return nil, Customer{}, engine.ErrNotFound
	}
	// Spec: position n/2 rounded up in first-name order (scan order).
	cust := rows[(len(rows)-1)/2]
	return CustomerKey(cust.WID, cust.DID, cust.ID), cust, nil
}

// lastNameMax bounds the last-name number by what the loader generated for
// scaled-down districts.
func lastNameMax(customersPerDistrict int) int {
	if customersPerDistrict >= 1000 {
		return 999
	}
	return customersPerDistrict - 1
}

// Payment runs the Payment transaction for the given home warehouse.
func (c *Client) Payment(ctx *pcontext.Context, r *rng.Rand, w uint32) error {
	did := uint32(r.IntRange(1, c.cfg.Districts))
	amount := int64(r.IntRange(100, 500000)) // 1.00..5000.00 in cents
	// 85% local customer; 15% remote (the mixed-warehouse share the paper
	// cites in §6.1).
	cw, cd := w, did
	if c.cfg.Warehouses > 1 && r.IntRange(1, 100) > 85 {
		cw = c.randomRemoteWID(r, w)
		cd = uint32(r.IntRange(1, c.cfg.Districts))
	}

	return retry(func() error {
		tx := c.e.Begin(ctx)
		defer tx.Abort()

		wKey := WarehouseKey(w)
		wRow, err := tx.Get(c.warehouses, wKey)
		if err != nil {
			return err
		}
		wh := DecodeWarehouse(wRow)
		wh.YTD += amount
		if err := tx.Update(c.warehouses, wKey, wh.Encode()); err != nil {
			return err
		}

		dKey := DistrictKey(w, did)
		dRow, err := tx.Get(c.districts, dKey)
		if err != nil {
			return err
		}
		district := DecodeDistrict(dRow)
		district.YTD += amount
		if err := tx.Update(c.districts, dKey, district.Encode()); err != nil {
			return err
		}

		cKey, cust, err := c.lookupCustomer(tx, r, cw, cd)
		if err != nil {
			return err
		}
		cust.Balance -= amount
		cust.YTDPayment += amount
		cust.PaymentCnt++
		if cust.Credit == "BC" {
			data := fmt.Sprintf("%d %d %d %d %d %d|%s", cust.ID, cust.DID, cust.WID, did, w, amount, cust.Data)
			if len(data) > 500 {
				data = data[:500]
			}
			cust.Data = data
		}
		if err := tx.Update(c.customers, cKey, cust.Encode()); err != nil {
			return err
		}

		h := History{
			CID: cust.ID, CDID: cust.DID, CWID: cust.WID, DID: did, WID: w,
			Amount: amount, Data: wh.Name + "    " + district.Name,
		}
		seq := c.hseq.Add(1)
		if err := tx.Insert(c.history, HistoryKey(cust.WID, cust.DID, cust.ID, 1<<32+seq), h.Encode()); err != nil {
			return err
		}
		return tx.Commit()
	})
}

// OrderStatus runs the Order-Status transaction (read-only).
func (c *Client) OrderStatus(ctx *pcontext.Context, r *rng.Rand, w uint32) error {
	did := uint32(r.IntRange(1, c.cfg.Districts))
	return retry(func() error {
		tx := c.e.Begin(ctx)
		defer tx.Abort()

		_, cust, err := c.lookupCustomer(tx, r, w, did)
		if err != nil {
			return err
		}
		// Newest order: first hit of a descending scan over the
		// by-customer index.
		prefix := keys.Uint32(keys.Uint32(keys.Uint32(nil, w), did), cust.ID)
		var latest *Order
		err = tx.ScanIndexDesc(c.orders, IdxOrdersByCustomer, prefix, keys.PrefixEnd(prefix),
			func(_, row []byte) bool {
				o := DecodeOrder(row)
				latest = &o
				return false
			})
		if err != nil {
			return err
		}
		if latest != nil {
			from := OrderLineKey(w, did, latest.ID, 0)
			to := OrderLineKey(w, did, latest.ID+1, 0)
			if err := tx.Scan(c.orderline, from, to, func(_, row []byte) bool {
				_ = DecodeOrderLine(row)
				return true
			}); err != nil {
				return err
			}
		}
		return tx.Commit()
	})
}

// Delivery runs the Delivery transaction: deliver the oldest undelivered
// order in every district of the warehouse.
func (c *Client) Delivery(ctx *pcontext.Context, r *rng.Rand, w uint32) error {
	carrier := uint32(r.IntRange(1, 10))
	return retry(func() error {
		tx := c.e.Begin(ctx)
		defer tx.Abort()
		for d := 1; d <= c.cfg.Districts; d++ {
			did := uint32(d)
			// Oldest new_order in this district.
			from := NewOrderKey(w, did, 0)
			to := NewOrderKey(w, did+1, 0)
			var oldest *NewOrderRow
			if err := tx.Scan(c.neworder, from, to, func(_, row []byte) bool {
				no := DecodeNewOrder(row)
				oldest = &no
				return false // first = oldest
			}); err != nil {
				return err
			}
			if oldest == nil {
				continue // district fully delivered
			}
			if err := tx.Delete(c.neworder, NewOrderKey(w, did, oldest.OID)); err != nil {
				return err
			}

			oKey := OrderKey(w, did, oldest.OID)
			oRow, err := tx.Get(c.orders, oKey)
			if err != nil {
				return err
			}
			ord := DecodeOrder(oRow)
			ord.CarrierID = carrier
			if err := tx.Update(c.orders, oKey, ord.Encode()); err != nil {
				return err
			}

			var sum int64
			olFrom := OrderLineKey(w, did, oldest.OID, 0)
			olTo := OrderLineKey(w, did, oldest.OID+1, 0)
			var olKeys [][]byte
			var olRows []OrderLine
			if err := tx.Scan(c.orderline, olFrom, olTo, func(k, row []byte) bool {
				olKeys = append(olKeys, append([]byte(nil), k...))
				olRows = append(olRows, DecodeOrderLine(row))
				return true
			}); err != nil {
				return err
			}
			for i, ol := range olRows {
				sum += ol.Amount
				ol.DeliveryD = 1
				if err := tx.Update(c.orderline, olKeys[i], ol.Encode()); err != nil {
					return err
				}
			}

			cKey := CustomerKey(w, did, ord.CID)
			cRow, err := tx.Get(c.customers, cKey)
			if err != nil {
				return err
			}
			cust := DecodeCustomer(cRow)
			cust.Balance += sum
			cust.DeliveryCnt++
			if err := tx.Update(c.customers, cKey, cust.Encode()); err != nil {
				return err
			}
		}
		return tx.Commit()
	})
}

// StockLevel runs the Stock-Level transaction (read-only).
func (c *Client) StockLevel(ctx *pcontext.Context, r *rng.Rand, w uint32) error {
	did := uint32(r.IntRange(1, c.cfg.Districts))
	threshold := int32(r.IntRange(10, 20))
	return retry(func() error {
		tx := c.e.Begin(ctx)
		defer tx.Abort()

		dRow, err := tx.Get(c.districts, DistrictKey(w, did))
		if err != nil {
			return err
		}
		district := DecodeDistrict(dRow)

		lowOID := uint32(0)
		if district.NextOID > 20 {
			lowOID = district.NextOID - 20
		}
		seen := make(map[uint32]struct{})
		from := OrderLineKey(w, did, lowOID, 0)
		to := OrderLineKey(w, did, district.NextOID, 0)
		if err := tx.Scan(c.orderline, from, to, func(_, row []byte) bool {
			ol := DecodeOrderLine(row)
			seen[ol.IID] = struct{}{}
			return true
		}); err != nil {
			return err
		}
		low := 0
		for iid := range seen {
			sRow, err := tx.Get(c.stock, StockKey(w, iid))
			if err != nil {
				return err
			}
			if DecodeStock(sRow).Quantity < threshold {
				low++
			}
		}
		_ = low
		return tx.Commit()
	})
}

// MixOutcome names one standard-mix transaction type.
type MixOutcome uint8

// Standard-mix transaction types.
const (
	TxNewOrder MixOutcome = iota
	TxPayment
	TxOrderStatus
	TxDelivery
	TxStockLevel
)

func (m MixOutcome) String() string {
	switch m {
	case TxNewOrder:
		return "NewOrder"
	case TxPayment:
		return "Payment"
	case TxOrderStatus:
		return "OrderStatus"
	case TxDelivery:
		return "Delivery"
	case TxStockLevel:
		return "StockLevel"
	default:
		return fmt.Sprintf("MixOutcome(%d)", uint8(m))
	}
}

// PickMix draws a transaction type with the spec's standard mix:
// 45% NewOrder, 43% Payment, 4% each of the rest.
func PickMix(r *rng.Rand) MixOutcome {
	switch x := r.IntRange(1, 100); {
	case x <= 45:
		return TxNewOrder
	case x <= 88:
		return TxPayment
	case x <= 92:
		return TxOrderStatus
	case x <= 96:
		return TxDelivery
	default:
		return TxStockLevel
	}
}

// Run executes one transaction of the given type on warehouse w.
func (c *Client) Run(kind MixOutcome, ctx *pcontext.Context, r *rng.Rand, w uint32) error {
	switch kind {
	case TxNewOrder:
		return c.NewOrder(ctx, r, w)
	case TxPayment:
		return c.Payment(ctx, r, w)
	case TxOrderStatus:
		return c.OrderStatus(ctx, r, w)
	case TxDelivery:
		return c.Delivery(ctx, r, w)
	case TxStockLevel:
		return c.StockLevel(ctx, r, w)
	default:
		return fmt.Errorf("tpcc: unknown transaction kind %v", kind)
	}
}
