package index

import (
	"bytes"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestScanDescEmpty(t *testing.T) {
	tr := New[int]()
	n := 0
	tr.ScanDesc(nil, nil, nil, func(k []byte, v int) bool { n++; return true })
	if n != 0 {
		t.Fatal("empty tree emitted entries")
	}
	if _, _, ok := tr.Max(nil); ok {
		t.Fatal("max on empty tree")
	}
}

func TestScanDescFullOrder(t *testing.T) {
	tr := New[int]()
	const n = 5000
	for _, i := range rand.New(rand.NewSource(3)).Perm(n) {
		tr.Insert(nil, key(i), i)
	}
	var got []int
	tr.ScanDesc(nil, nil, nil, func(k []byte, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != n {
		t.Fatalf("emitted %d of %d", len(got), n)
	}
	for i := range got {
		if got[i] != n-1-i {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], n-1-i)
		}
	}
}

func TestScanDescBounds(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 1000; i++ {
		tr.Insert(nil, key(i), i)
	}
	var got []int
	tr.ScanDesc(nil, key(100), key(200), func(k []byte, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 100 || got[0] != 199 || got[99] != 100 {
		t.Fatalf("len=%d first=%d last=%d", len(got), got[0], got[len(got)-1])
	}
	// Early stop: newest-first point lookup.
	var newest int
	tr.ScanDesc(nil, nil, key(500), func(k []byte, v int) bool {
		newest = v
		return false
	})
	if newest != 499 {
		t.Fatalf("newest below 500 = %d", newest)
	}
}

func TestScanDescSparse(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 1000; i += 7 {
		tr.Insert(nil, key(i), i)
	}
	var got []int
	tr.ScanDesc(nil, key(10), key(50), func(k []byte, v int) bool {
		got = append(got, v)
		return true
	})
	want := []int{49, 42, 35, 28, 21, 14}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestScanDescWithDeletedRanges(t *testing.T) {
	// Deletions leave underflowing (possibly empty) leaves; the descending
	// scan's fence logic must step across them.
	tr := New[int]()
	const n = 10000
	for i := 0; i < n; i++ {
		tr.Insert(nil, key(i), i)
	}
	// Carve out large holes.
	for i := 1000; i < 9000; i++ {
		tr.Delete(nil, key(i))
	}
	var got []int
	tr.ScanDesc(nil, nil, nil, func(k []byte, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 2000 {
		t.Fatalf("emitted %d, want 2000", len(got))
	}
	if got[0] != n-1 || got[len(got)-1] != 0 {
		t.Fatalf("ends: %d .. %d", got[0], got[len(got)-1])
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] > got[j] }) {
		t.Fatal("not descending")
	}
}

func TestMax(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 100; i++ {
		tr.Insert(nil, key(i), i)
	}
	k, v, ok := tr.Max(nil)
	if !ok || v != 99 || !bytes.Equal(k, key(99)) {
		t.Fatalf("max = (%x,%d,%v)", k, v, ok)
	}
}

func TestQuickScanDescMatchesReverseScan(t *testing.T) {
	err := quick.Check(func(ks []uint16, lo, hi uint16) bool {
		tr := New[uint16]()
		for _, k := range ks {
			tr.Insert(nil, key(int(k)), k)
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		var asc, desc []uint16
		tr.Scan(nil, key(int(lo)), key(int(hi)), func(k []byte, v uint16) bool {
			asc = append(asc, v)
			return true
		})
		tr.ScanDesc(nil, key(int(lo)), key(int(hi)), func(k []byte, v uint16) bool {
			desc = append(desc, v)
			return true
		})
		if len(asc) != len(desc) {
			return false
		}
		for i := range asc {
			if asc[i] != desc[len(desc)-1-i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanDescUnderConcurrentInserts(t *testing.T) {
	tr := New[uint64]()
	const n = 20000
	for i := 0; i < n; i += 2 {
		tr.Insert(nil, key(i), uint64(i))
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i < n; i += 2 {
			tr.Insert(nil, key(i), uint64(i))
		}
	}()
	for round := 0; round < 10; round++ {
		var prev []byte
		seenEven := 0
		tr.ScanDesc(nil, nil, nil, func(k []byte, v uint64) bool {
			if prev != nil && bytes.Compare(prev, k) <= 0 {
				t.Error("descending order violated under concurrency")
				return false
			}
			prev = append(prev[:0], k...)
			if v%2 == 0 {
				seenEven++
			}
			return true
		})
		if seenEven != n/2 {
			t.Fatalf("missed preloaded keys: %d of %d", seenEven, n/2)
		}
	}
	wg.Wait()
}

func BenchmarkScanDesc100(b *testing.B) {
	tr := New[int]()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Insert(nil, key(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := (i*97)%(n-200) + 100
		cnt := 0
		tr.ScanDesc(nil, key(start), key(start+100), func(k []byte, v int) bool {
			cnt++
			return true
		})
	}
}
