package index

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// checkCover asserts ranges form an exact contiguous cover of [from, to).
func checkCover(t *testing.T, ranges []Range, from, to []byte) {
	t.Helper()
	if len(ranges) == 0 {
		t.Fatal("empty partition")
	}
	if !bytes.Equal(ranges[0].From, from) {
		t.Fatalf("first range starts at %x, want %x", ranges[0].From, from)
	}
	if !bytes.Equal(ranges[len(ranges)-1].To, to) {
		t.Fatalf("last range ends at %x, want %x", ranges[len(ranges)-1].To, to)
	}
	for i := 1; i < len(ranges); i++ {
		if !bytes.Equal(ranges[i-1].To, ranges[i].From) {
			t.Fatalf("gap between range %d and %d: %x != %x", i-1, i, ranges[i-1].To, ranges[i].From)
		}
		if ranges[i].From == nil {
			t.Fatalf("interior bound %d is nil", i)
		}
	}
	for i, r := range ranges {
		if r.From != nil && r.To != nil && bytes.Compare(r.From, r.To) >= 0 {
			t.Fatalf("range %d not increasing: %x >= %x", i, r.From, r.To)
		}
	}
}

// scanCount counts keys the tree holds in [from, to).
func scanCount(tr *Tree[int], from, to []byte) int {
	n := 0
	tr.Scan(nil, from, to, func([]byte, int) bool { n++; return true })
	return n
}

func TestPartitionSmallTree(t *testing.T) {
	tr := New[int]()
	// Empty tree and single-leaf tree: one degenerate range.
	for _, n := range []int{0, 5} {
		for i := 0; i < n; i++ {
			tr.Insert(nil, key(i), i)
		}
		ranges := tr.Partition(nil, nil, nil, 8)
		if len(ranges) != 1 || ranges[0].From != nil || ranges[0].To != nil {
			t.Fatalf("small tree (%d keys): got %d ranges %v", n, len(ranges), ranges)
		}
	}
}

func TestPartitionCoverAndBalance(t *testing.T) {
	tr := New[int]()
	const n = 20000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		tr.Insert(nil, key(i), i)
	}
	for _, want := range []int{2, 4, 8, 16, 64} {
		ranges := tr.Partition(nil, nil, nil, want)
		checkCover(t, ranges, nil, nil)
		if len(ranges) < 2 || len(ranges) > want {
			t.Fatalf("want up to %d ranges, got %d", want, len(ranges))
		}
		total := 0
		max := 0
		for _, r := range ranges {
			c := scanCount(tr, r.From, r.To)
			total += c
			if c > max {
				max = c
			}
		}
		if total != n {
			t.Fatalf("ranges cover %d keys, want %d", total, n)
		}
		// Balance: the largest morsel should be well under the whole range.
		if len(ranges) >= 4 && max > n/2 {
			t.Fatalf("unbalanced partition: largest morsel %d of %d keys over %d ranges", max, n, len(ranges))
		}
	}
}

func TestPartitionBoundedRange(t *testing.T) {
	tr := New[int]()
	const n = 20000
	for i := 0; i < n; i++ {
		tr.Insert(nil, key(i), i)
	}
	from, to := key(3000), key(17000)
	ranges := tr.Partition(nil, from, to, 8)
	checkCover(t, ranges, from, to)
	total := 0
	for _, r := range ranges {
		// Every interior bound must stay inside (from, to).
		if r.From != nil && !bytes.Equal(r.From, from) {
			if bytes.Compare(r.From, from) <= 0 || bytes.Compare(r.From, to) >= 0 {
				t.Fatalf("separator %x outside (%x, %x)", r.From, from, to)
			}
		}
		total += scanCount(tr, r.From, r.To)
	}
	if total != 14000 {
		t.Fatalf("ranges cover %d keys, want 14000", total)
	}
}

// TestPartitionConcurrent hammers Partition while writers churn the tree; the
// result must stay a valid cover on every sample and the restart counter must
// stay separate from the point-op counter.
func TestPartitionConcurrent(t *testing.T) {
	tr := New[int]()
	const n = 8192
	for i := 0; i < n; i++ {
		tr.Insert(nil, key(i*2), i)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := r.Intn(n * 2)
			if k%2 == 1 {
				// Odd keys churn: insert and delete to force splits.
				tr.Insert(nil, key(k), k)
				tr.Delete(nil, key(k))
			} else {
				tr.Insert(nil, key(k), k)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		ranges := tr.Partition(nil, nil, nil, 16)
		checkCover(t, ranges, nil, nil)
	}
	close(stop)
	wg.Wait()
	// Partition under churn must never have bumped the point-op counter via
	// its own restarts (they are tracked separately); just exercise both.
	_ = tr.Restarts()
	_ = tr.PartitionRestarts()
}
