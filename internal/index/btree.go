// Package index implements the concurrent ordered index PreemptDB tables are
// built on: a B+tree synchronized with optimistic lock coupling (OLC).
//
// Readers traverse without taking latches, validating per-node version
// counters and restarting on conflict, so lookups and scans never block —
// the property (together with MVCC) that makes pausing a preempted
// transaction safe in PreemptDB. Writers latch at most two nodes at a time.
//
// Because database latches have no deadlock detection (paper §4.4), every
// structure-modifying operation that holds more than one latch runs inside a
// non-preemptible region: if a context were preempted while holding a node
// latch, the high-priority transaction running on the *same core* could block
// on that latch forever — a self-deadlock that cannot be resolved by waiting.
// Traversals additionally poll the context at every node visit, giving the
// sub-microsecond preemption granularity the engine relies on.
package index

import (
	"bytes"
	"sync/atomic"

	"preemptdb/internal/pcontext"
)

const (
	// maxKeys is the node fanout. 64 keeps nodes around a few cache lines of
	// key headers while bounding restart work.
	maxKeys = 64
	minKeys = maxKeys / 2
)

// version-word layout: bit0 = locked, bit1 = obsolete, bits 2.. = counter.
const (
	lockedBit   = 1 << 0
	obsoleteBit = 1 << 1
	versionInc  = 1 << 2
)

type node[V any] struct {
	version atomic.Uint64
	numKeys int
	keys    [maxKeys][]byte
	// Exactly one of the following is used depending on leaf.
	children [maxKeys + 1]*node[V] // inner: child i covers keys < keys[i]
	values   [maxKeys]V           // leaf
	next     *node[V]             // leaf: right sibling (guarded by version)
	leaf     bool
}

// readLock samples the version for optimistic validation; ok is false when
// the node is locked or obsolete and the caller must restart.
func (n *node[V]) readLock() (uint64, bool) {
	v := n.version.Load()
	if v&(lockedBit|obsoleteBit) != 0 {
		return 0, false
	}
	return v, true
}

// readUnlock validates that the node did not change since readLock.
func (n *node[V]) readUnlock(v uint64) bool { return n.version.Load() == v }

// upgradeLock atomically converts a read "lock" into a write latch.
func (n *node[V]) upgradeLock(v uint64) bool {
	return n.version.CompareAndSwap(v, v|lockedBit)
}

// writeLock acquires the latch, spinning; fails only on obsolete nodes.
func (n *node[V]) writeLock() bool {
	for {
		v := n.version.Load()
		if v&obsoleteBit != 0 {
			return false
		}
		if v&lockedBit != 0 {
			continue // spin: latches are held for nanoseconds
		}
		if n.version.CompareAndSwap(v, v|lockedBit) {
			return true
		}
	}
}

// writeUnlock releases the latch and bumps the version counter.
func (n *node[V]) writeUnlock() {
	n.version.Add(versionInc - lockedBit)
}

// markObsolete flags a node replaced by an SMO and releases its latch.
func (n *node[V]) markObsolete() {
	n.version.Add(versionInc + obsoleteBit - lockedBit)
}

// search returns the index of the first key >= k, and whether it equals k.
func (n *node[V]) search(k []byte) (int, bool) {
	lo, hi := 0, n.numKeys
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(n.keys[mid], k) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true
		default:
			hi = mid
		}
	}
	return lo, false
}

// childIndex returns which child pointer to follow for key k in an inner
// node: child i holds keys k with keys[i-1] <= k < keys[i].
func (n *node[V]) childIndex(k []byte) int {
	idx, eq := n.search(k)
	if eq {
		return idx + 1
	}
	return idx
}

// Tree is a concurrent B+tree from []byte keys to values of type V.
// The zero value is not usable; call New.
type Tree[V any] struct {
	root     atomic.Pointer[node[V]]
	size     atomic.Int64
	restarts atomic.Uint64
	// partitionRestarts counts whole-sample restarts of the Partition helper
	// separately from point/scan restarts: a partition retry re-reads an
	// entire level frontier, so the two signals have very different costs.
	partitionRestarts atomic.Uint64
}

// New returns an empty tree.
func New[V any]() *Tree[V] {
	t := &Tree[V]{}
	t.root.Store(&node[V]{leaf: true})
	return t
}

// Len returns the number of keys in the tree.
func (t *Tree[V]) Len() int { return int(t.size.Load()) }

// Restarts returns the cumulative number of optimistic restarts, an
// observability hook for contention experiments.
func (t *Tree[V]) Restarts() uint64 { return t.restarts.Load() }

// PartitionRestarts returns the cumulative number of whole-sample restarts
// taken by Partition, surfaced separately from Restarts for observability.
func (t *Tree[V]) PartitionRestarts() uint64 { return t.partitionRestarts.Load() }

// Get returns the value stored under key. ctx may be nil; when set, the
// traversal polls it at every node, making lookups preemptible.
func (t *Tree[V]) Get(ctx *pcontext.Context, key []byte) (V, bool) {
	var zero V
	for {
		v, ok := t.get(ctx, key)
		if ok {
			return v, true
		}
		if !t.retryNeeded() {
			return zero, false
		}
	}
}

// lockRoot samples the current root for optimistic descent. It re-checks the
// root pointer after sampling the version: a concurrent root growth replaces
// the pointer before bumping the old root's version, so a version sampled
// while the pointer is still current is guaranteed to be invalidated by any
// later split of that node.
func (t *Tree[V]) lockRoot() (*node[V], uint64, bool) {
	n := t.root.Load()
	ver, ok := n.readLock()
	if !ok || t.root.Load() != n {
		return nil, 0, false
	}
	return n, ver, true
}

// get performs one optimistic attempt; on validation failure it records a
// restart and returns ok=false with retryNeeded()==true.
func (t *Tree[V]) get(ctx *pcontext.Context, key []byte) (V, bool) {
	var zero V
restart:
	t.clearRetry()
	n, ver, ok := t.lockRoot()
	if !ok {
		t.noteRestart()
		goto restart
	}
	for !n.leaf {
		ctx.Poll()
		// Each level of the descent dereferences a fresh node — the memory
		// access the paper's hardware would stall on. Mark it so a K-way core
		// can rotate to a sibling context instead of (simulated) waiting.
		ctx.YieldStall()
		child := n.children[n.childIndex(key)]
		if !n.readUnlock(ver) {
			t.noteRestart()
			goto restart
		}
		n = child
		if ver, ok = n.readLock(); !ok {
			t.noteRestart()
			goto restart
		}
	}
	ctx.Poll()
	idx, eq := n.search(key)
	var val V
	if eq {
		val = n.values[idx]
	}
	if !n.readUnlock(ver) {
		t.noteRestart()
		goto restart
	}
	if !eq {
		return zero, false
	}
	return val, true
}

// retry bookkeeping: get/insert signal restart via a goroutine-local-ish
// pattern; since Go lacks cheap TLS we simply loop inside the exported
// methods and use sentinel returns. The two methods below keep the restart
// counter honest without extra state.
func (t *Tree[V]) retryNeeded() bool { return false }
func (t *Tree[V]) clearRetry()       {}
func (t *Tree[V]) noteRestart()      { t.restarts.Add(1) }

// Insert stores value under key, replacing any existing value. It reports
// whether the key was newly inserted (false = replaced). The key is copied.
func (t *Tree[V]) Insert(ctx *pcontext.Context, key []byte, value V) bool {
	for {
		inserted, ok := t.insertOnce(ctx, key, value)
		if ok {
			if inserted {
				t.size.Add(1)
			}
			return inserted
		}
		t.noteRestart()
	}
}

// insertOnce attempts one optimistic descent with leaf latching; ok=false
// requests a restart.
func (t *Tree[V]) insertOnce(ctx *pcontext.Context, key []byte, value V) (inserted, ok bool) {
	n, ver, rok := t.lockRoot()
	if !rok {
		return false, false
	}
	var parent *node[V]
	var parentVer uint64
	for !n.leaf {
		ctx.Poll()
		ctx.YieldStall()
		if parent != nil && !parent.readUnlock(parentVer) {
			return false, false
		}
		parent, parentVer = n, ver
		n = n.children[n.childIndex(key)]
		if ver, rok = n.readLock(); !rok {
			return false, false
		}
		if !parent.readUnlock(parentVer) {
			return false, false
		}
	}
	ctx.Poll()
	// Fast path: leaf has room (or key exists). Upgrade leaf latch only.
	idx, eq := n.search(key)
	if eq || n.numKeys < maxKeys {
		// Latching is a critical section: once we hold it, a preemption of
		// this context could deadlock a same-core transaction that needs
		// this leaf, so the update runs non-preemptibly (paper §4.4).
		var done, ins bool
		pcontext.NonPreemptible(ctx, func() {
			if !n.upgradeLock(ver) {
				return
			}
			// Re-search under the latch: the optimistic read above is only a
			// hint and the node may have changed between load and upgrade.
			idx, eq = n.search(key)
			if eq {
				n.values[idx] = value
			} else if n.numKeys < maxKeys {
				copy(n.keys[idx+1:n.numKeys+1], n.keys[idx:n.numKeys])
				copy(n.values[idx+1:n.numKeys+1], n.values[idx:n.numKeys])
				n.keys[idx] = append([]byte(nil), key...)
				n.values[idx] = value
				n.numKeys++
				ins = true
			} else {
				// Filled up between read and latch: fall back to split path.
				n.writeUnlock()
				return
			}
			n.writeUnlock()
			done = true
		})
		if done {
			return ins, true
		}
		return false, false
	}
	// Leaf is full: pessimistic descent with latch crabbing and preemptive
	// splits so we never hold more than two latches.
	return t.insertPessimistic(ctx, key, value)
}

// insertPessimistic descends from the root taking write latches, splitting
// every full node on the way down (preemptive splits guarantee the parent
// always has room for the separator). The whole descent is one
// non-preemptible region because latches are held across it.
func (t *Tree[V]) insertPessimistic(ctx *pcontext.Context, key []byte, value V) (inserted, ok bool) {
	pcontext.NonPreemptible(ctx, func() {
		root := t.root.Load()
		if !root.writeLock() {
			return
		}
		if t.root.Load() != root {
			// Lost a race with a concurrent root growth; retry from the top.
			root.writeUnlock()
			return
		}
		// Grow the tree if the root itself is full. The new root is latched
		// *before* it is published so no other writer can slip between the
		// publication and the split.
		if root.numKeys == maxKeys {
			newRoot := &node[V]{}
			newRoot.children[0] = root
			newRoot.version.Store(lockedBit)
			if !t.root.CompareAndSwap(root, newRoot) {
				root.writeUnlock()
				return
			}
			t.splitChild(newRoot, 0)
			root.writeUnlock()
			root = newRoot
		}
		n := root
		for !n.leaf {
			idx := n.childIndex(key)
			child := n.children[idx]
			if !child.writeLock() {
				n.writeUnlock()
				return
			}
			if child.numKeys == maxKeys {
				t.splitChild(n, idx)
				// The separator moved up; re-decide which half to enter.
				idx = n.childIndex(key)
				other := n.children[idx]
				if other != child {
					if !other.writeLock() {
						child.writeUnlock()
						n.writeUnlock()
						return
					}
					child.writeUnlock()
					child = other
				}
			}
			n.writeUnlock()
			n = child
		}
		idx, eq := n.search(key)
		if eq {
			n.values[idx] = value
		} else {
			copy(n.keys[idx+1:n.numKeys+1], n.keys[idx:n.numKeys])
			copy(n.values[idx+1:n.numKeys+1], n.values[idx:n.numKeys])
			n.keys[idx] = append([]byte(nil), key...)
			n.values[idx] = value
			n.numKeys++
			inserted = true
		}
		n.writeUnlock()
		ok = true
	})
	return inserted, ok
}

// splitChild splits parent.children[i] (latched by caller along with parent)
// into two, hoisting the separator into parent. The child's latch state is
// preserved; the new right sibling is created unlatched.
func (t *Tree[V]) splitChild(parent *node[V], i int) {
	child := parent.children[i]
	mid := child.numKeys / 2
	right := &node[V]{leaf: child.leaf}

	var sep []byte
	if child.leaf {
		// Leaf split: right keeps keys[mid:], separator is right's first key.
		copy(right.keys[:], child.keys[mid:child.numKeys])
		copy(right.values[:], child.values[mid:child.numKeys])
		right.numKeys = child.numKeys - mid
		right.next = child.next
		child.next = right
		child.numKeys = mid
		sep = right.keys[0]
	} else {
		// Inner split: separator keys[mid] moves up, right keeps keys[mid+1:].
		sep = child.keys[mid]
		copy(right.keys[:], child.keys[mid+1:child.numKeys])
		copy(right.children[:], child.children[mid+1:child.numKeys+1])
		right.numKeys = child.numKeys - mid - 1
		child.numKeys = mid
	}
	// Clear abandoned slots so stale references do not pin memory.
	for j := child.numKeys; j < maxKeys; j++ {
		child.keys[j] = nil
		if child.leaf {
			var zero V
			child.values[j] = zero
		} else if j+1 <= maxKeys {
			child.children[j+1] = nil
		}
	}

	// Make room in the parent.
	copy(parent.keys[i+1:parent.numKeys+1], parent.keys[i:parent.numKeys])
	copy(parent.children[i+2:parent.numKeys+2], parent.children[i+1:parent.numKeys+1])
	parent.keys[i] = sep
	parent.children[i+1] = right
	parent.numKeys++
	// Bump the child's version so concurrent optimistic readers restart.
	child.version.Add(versionInc)
}

// GetOrInsert returns the value stored under key, inserting value and
// returning it when the key is absent. inserted reports which happened.
// The operation is atomic with respect to concurrent GetOrInsert/Insert on
// the same key: exactly one caller inserts.
func (t *Tree[V]) GetOrInsert(ctx *pcontext.Context, key []byte, value V) (actual V, inserted bool) {
	for {
		if v, ok := t.Get(ctx, key); ok {
			return v, false
		}
		ins, ok := t.insertAbsentOnce(ctx, key, value)
		if ok {
			if ins {
				t.size.Add(1)
				return value, true
			}
			// Someone else inserted between our Get and latch; loop to read it.
			continue
		}
		t.noteRestart()
	}
}

// insertAbsentOnce is insertOnce with if-absent semantics: an existing key is
// left untouched and reported as not-inserted.
func (t *Tree[V]) insertAbsentOnce(ctx *pcontext.Context, key []byte, value V) (inserted, ok bool) {
	n, ver, rok := t.lockRoot()
	if !rok {
		return false, false
	}
	for !n.leaf {
		ctx.Poll()
		ctx.YieldStall()
		child := n.children[n.childIndex(key)]
		if !n.readUnlock(ver) {
			return false, false
		}
		n = child
		if ver, rok = n.readLock(); !rok {
			return false, false
		}
	}
	ctx.Poll()
	idx, eq := n.search(key)
	if eq {
		// Validate the observation before trusting it.
		if !n.readUnlock(ver) {
			return false, false
		}
		return false, true
	}
	if n.numKeys < maxKeys {
		var done, ins bool
		pcontext.NonPreemptible(ctx, func() {
			if !n.upgradeLock(ver) {
				return
			}
			idx, eq = n.search(key)
			switch {
			case eq:
				// Inserted concurrently; leave it.
			case n.numKeys < maxKeys:
				copy(n.keys[idx+1:n.numKeys+1], n.keys[idx:n.numKeys])
				copy(n.values[idx+1:n.numKeys+1], n.values[idx:n.numKeys])
				n.keys[idx] = append([]byte(nil), key...)
				n.values[idx] = value
				n.numKeys++
				ins = true
			default:
				n.writeUnlock()
				return
			}
			n.writeUnlock()
			done = true
		})
		if done {
			return ins, true
		}
		return false, false
	}
	// Full leaf: the pessimistic path re-checks existence under latches.
	return t.insertAbsentPessimistic(ctx, key, value)
}

// insertAbsentPessimistic mirrors insertPessimistic with if-absent semantics.
func (t *Tree[V]) insertAbsentPessimistic(ctx *pcontext.Context, key []byte, value V) (inserted, ok bool) {
	pcontext.NonPreemptible(ctx, func() {
		root := t.root.Load()
		if !root.writeLock() {
			return
		}
		if t.root.Load() != root {
			root.writeUnlock()
			return
		}
		if root.numKeys == maxKeys {
			newRoot := &node[V]{}
			newRoot.children[0] = root
			newRoot.version.Store(lockedBit)
			if !t.root.CompareAndSwap(root, newRoot) {
				root.writeUnlock()
				return
			}
			t.splitChild(newRoot, 0)
			root.writeUnlock()
			root = newRoot
		}
		n := root
		for !n.leaf {
			idx := n.childIndex(key)
			child := n.children[idx]
			if !child.writeLock() {
				n.writeUnlock()
				return
			}
			if child.numKeys == maxKeys {
				t.splitChild(n, idx)
				idx = n.childIndex(key)
				other := n.children[idx]
				if other != child {
					if !other.writeLock() {
						child.writeUnlock()
						n.writeUnlock()
						return
					}
					child.writeUnlock()
					child = other
				}
			}
			n.writeUnlock()
			n = child
		}
		idx, eq := n.search(key)
		if !eq {
			copy(n.keys[idx+1:n.numKeys+1], n.keys[idx:n.numKeys])
			copy(n.values[idx+1:n.numKeys+1], n.values[idx:n.numKeys])
			n.keys[idx] = append([]byte(nil), key...)
			n.values[idx] = value
			n.numKeys++
			inserted = true
		}
		n.writeUnlock()
		ok = true
	})
	return inserted, ok
}

// Delete removes key, reporting whether it was present. Leaves are allowed
// to underflow (no rebalancing): deletion marks are cheap and the MVCC layer
// above already retires most data via version GC, so classic merge logic
// buys little and costs latch complexity.
func (t *Tree[V]) Delete(ctx *pcontext.Context, key []byte) bool {
	for {
		deleted, ok := t.deleteOnce(ctx, key)
		if ok {
			if deleted {
				t.size.Add(-1)
			}
			return deleted
		}
		t.noteRestart()
	}
}

func (t *Tree[V]) deleteOnce(ctx *pcontext.Context, key []byte) (deleted, ok bool) {
	n, ver, rok := t.lockRoot()
	if !rok {
		return false, false
	}
	for !n.leaf {
		ctx.Poll()
		ctx.YieldStall()
		child := n.children[n.childIndex(key)]
		if !n.readUnlock(ver) {
			return false, false
		}
		n = child
		if ver, rok = n.readLock(); !rok {
			return false, false
		}
	}
	var done bool
	pcontext.NonPreemptible(ctx, func() {
		if !n.upgradeLock(ver) {
			return
		}
		idx, eq := n.search(key)
		if eq {
			copy(n.keys[idx:n.numKeys-1], n.keys[idx+1:n.numKeys])
			copy(n.values[idx:n.numKeys-1], n.values[idx+1:n.numKeys])
			n.numKeys--
			n.keys[n.numKeys] = nil
			var zero V
			n.values[n.numKeys] = zero
			deleted = true
		}
		n.writeUnlock()
		done = true
	})
	return deleted, done
}

// ScanFunc receives each key/value in order; returning false stops the scan.
// The callback runs with no latches held and may itself poll, yield or be
// preempted — keys passed to it are owned by the tree and must not be
// modified or retained across calls.
type ScanFunc[V any] func(key []byte, value V) bool

// Scan visits all entries with from <= key < to in ascending order (nil `to`
// means unbounded). The snapshot is per-leaf: each leaf's entries are copied
// out under version validation, then emitted latch-free, so a scan observes
// every key that existed for the whole scan and may or may not observe
// concurrent insertions — the standard guarantee for latch-free range scans
// under snapshot-isolated MVCC (version visibility is resolved above us).
func (t *Tree[V]) Scan(ctx *pcontext.Context, from, to []byte, fn ScanFunc[V]) {
	var bufK [maxKeys][]byte
	var bufV [maxKeys]V
	start := from
	for {
		leaf, ok := t.findLeaf(ctx, start)
		if !ok {
			t.noteRestart()
			continue
		}
		n := leaf
		restart := false
		for n != nil {
			ctx.Poll()
			ctx.YieldStall() // leaf-to-leaf hop: a fresh cache line per leaf
			if ctx.Err() != nil {
				// Lifecycle canceled or past deadline: abandon the scan at
				// the leaf boundary; the caller observes ctx.Err itself.
				return
			}
			ver, rok := n.readLock()
			if !rok {
				restart = true
				break
			}
			cnt, lo := 0, 0
			if start != nil {
				lo, _ = n.search(start)
			}
			hitTo := false
			for i := lo; i < n.numKeys; i++ {
				if to != nil && bytes.Compare(n.keys[i], to) >= 0 {
					hitTo = true
					break
				}
				bufK[cnt] = n.keys[i]
				bufV[cnt] = n.values[i]
				cnt++
			}
			next := n.next
			if !n.readUnlock(ver) {
				restart = true
				break
			}
			// Emit latch-free: the callback may poll, yield or be preempted.
			for i := 0; i < cnt; i++ {
				if !fn(bufK[i], bufV[i]) {
					return
				}
			}
			if cnt > 0 {
				// Exclusive resume point should a later leaf force a restart.
				start = nextKeyAfter(bufK[cnt-1])
			}
			if hitTo || next == nil {
				return
			}
			n = next
		}
		if !restart {
			return
		}
		t.noteRestart()
	}
}

// nextKeyAfter returns the immediate successor of k in bytewise order
// (k with a zero byte appended), used as an exclusive resume point.
func nextKeyAfter(k []byte) []byte {
	s := make([]byte, len(k)+1)
	copy(s, k)
	return s
}

// findLeaf descends optimistically to the leaf that would contain key
// (nil key = leftmost leaf).
func (t *Tree[V]) findLeaf(ctx *pcontext.Context, key []byte) (*node[V], bool) {
	n, ver, ok := t.lockRoot()
	if !ok {
		return nil, false
	}
	for !n.leaf {
		ctx.Poll()
		ctx.YieldStall()
		var child *node[V]
		if key == nil {
			child = n.children[0]
		} else {
			child = n.children[n.childIndex(key)]
		}
		if !n.readUnlock(ver) {
			return nil, false
		}
		n = child
		if ver, ok = n.readLock(); !ok {
			return nil, false
		}
	}
	if !n.readUnlock(ver) {
		return nil, false
	}
	return n, true
}

// Min returns the smallest key and its value.
func (t *Tree[V]) Min(ctx *pcontext.Context) (key []byte, value V, ok bool) {
	t.Scan(ctx, nil, nil, func(k []byte, v V) bool {
		key, value, ok = append([]byte(nil), k...), v, true
		return false
	})
	return
}

// Max returns the largest key and its value.
func (t *Tree[V]) Max(ctx *pcontext.Context) (key []byte, value V, ok bool) {
	t.ScanDesc(ctx, nil, nil, func(k []byte, v V) bool {
		key, value, ok = append([]byte(nil), k...), v, true
		return false
	})
	return
}

// ScanDesc visits all entries with from <= key < to in DESCENDING key order
// (nil bounds are open). Leaves are singly linked, so each leaf transition
// costs one root-to-leaf descent; point "newest first" lookups (e.g. the
// latest order for a customer) touch one or two leaves. Snapshot semantics
// match Scan: per-leaf copies under version validation, emitted latch-free.
func (t *Tree[V]) ScanDesc(ctx *pcontext.Context, from, to []byte, fn ScanFunc[V]) {
	var bufK [maxKeys][]byte
	var bufV [maxKeys]V
	upper := to // exclusive moving bound; nil = +∞
	for {
		ctx.Poll()
		ctx.YieldStall() // leaf-to-leaf hop (descending)
		if ctx.Err() != nil {
			return // see Scan: unwind at the leaf boundary when canceled
		}
		leaf, fence, leftmost, ok := t.findLeafLess(ctx, upper)
		if !ok {
			t.noteRestart()
			continue
		}
		ver, rok := leaf.readLock()
		if !rok {
			t.noteRestart()
			continue
		}
		// Collect entries in [from, upper) from this leaf.
		hi := leaf.numKeys
		if upper != nil {
			hi, _ = leaf.search(upper)
		}
		cnt, hitFrom := 0, false
		for i := hi - 1; i >= 0; i-- {
			if from != nil && bytes.Compare(leaf.keys[i], from) < 0 {
				hitFrom = true
				break
			}
			bufK[cnt] = leaf.keys[i]
			bufV[cnt] = leaf.values[i]
			cnt++
		}
		if !leaf.readUnlock(ver) {
			t.noteRestart()
			continue
		}
		for i := 0; i < cnt; i++ {
			if !fn(bufK[i], bufV[i]) {
				return
			}
		}
		if hitFrom {
			return
		}
		switch {
		case cnt > 0:
			// Continue strictly below the smallest key just emitted.
			upper = append([]byte(nil), bufK[cnt-1]...)
		case fence != nil:
			// Leaf had nothing below the bound; continue left of the
			// separator that guarded it.
			upper = fence
		default:
			leftmost = true
		}
		if leftmost {
			// The leftmost leaf's candidates are exhausted; nothing remains.
			return
		}
	}
}

// findLeafLess descends to the leaf that may contain keys strictly below
// upper (nil = +∞): at each inner node it takes the child left of the first
// separator ≥ upper. fence is the rightmost separator passed on the way
// down (an exclusive upper bound for everything left of this leaf) and
// leftmost reports that the descent took child 0 at every level.
func (t *Tree[V]) findLeafLess(ctx *pcontext.Context, upper []byte) (leaf *node[V], fence []byte, leftmost bool, ok bool) {
	n, ver, rok := t.lockRoot()
	if !rok {
		return nil, nil, false, false
	}
	leftmost = true
	for !n.leaf {
		ctx.Poll()
		ctx.YieldStall()
		var idx int
		if upper == nil {
			idx = n.numKeys // rightmost child
		} else {
			// First separator >= upper bounds the keys < upper to child idx.
			idx, _ = n.search(upper)
		}
		if idx > 0 {
			leftmost = false
			fence = n.keys[idx-1]
		}
		child := n.children[idx]
		if !n.readUnlock(ver) {
			return nil, nil, false, false
		}
		n = child
		if ver, rok = n.readLock(); !rok {
			return nil, nil, false, false
		}
	}
	if !n.readUnlock(ver) {
		return nil, nil, false, false
	}
	return n, fence, leftmost, true
}
