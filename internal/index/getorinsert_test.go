package index

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetOrInsertBasic(t *testing.T) {
	tr := New[*int]()
	a, b := new(int), new(int)
	got, inserted := tr.GetOrInsert(nil, key(1), a)
	if !inserted || got != a {
		t.Fatal("first GetOrInsert must insert")
	}
	got, inserted = tr.GetOrInsert(nil, key(1), b)
	if inserted || got != a {
		t.Fatal("second GetOrInsert must return the existing value")
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestGetOrInsertExactlyOneWinnerPerKey(t *testing.T) {
	// The engine's row-creation path depends on this: under concurrent
	// inserts of the same key, exactly one caller's record must win and
	// every caller must observe that same record.
	tr := New[*int]()
	const goroutines, keys = 8, 2000
	winners := make([]atomic.Pointer[int], keys)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				candidate := new(int)
				*candidate = k
				got, _ := tr.GetOrInsert(nil, key(k), candidate)
				if *got != k {
					t.Errorf("key %d resolved to value %d", k, *got)
					return
				}
				prev := winners[k].Swap(got)
				if prev != nil && prev != got {
					t.Errorf("key %d has two distinct winners", k)
					return
				}
			}
		}()
	}
	wg.Wait()
	if tr.Len() != keys {
		t.Fatalf("len = %d, want %d", tr.Len(), keys)
	}
	// The stored value must match the recorded winner.
	for k := 0; k < keys; k++ {
		v, ok := tr.Get(nil, key(k))
		if !ok || v != winners[k].Load() {
			t.Fatalf("key %d: stored %p winner %p", k, v, winners[k].Load())
		}
	}
}

func TestGetOrInsertIntoFullLeaves(t *testing.T) {
	// Force the pessimistic (split) path of the if-absent insert.
	tr := New[int]()
	for i := 0; i < 10000; i += 2 {
		tr.Insert(nil, key(i), i)
	}
	for i := 1; i < 10000; i += 2 {
		if _, inserted := tr.GetOrInsert(nil, key(i), i); !inserted {
			t.Fatalf("key %d claimed existing", i)
		}
	}
	for i := 0; i < 10000; i += 2 {
		if _, inserted := tr.GetOrInsert(nil, key(i), -1); inserted {
			t.Fatalf("key %d re-inserted", i)
		}
	}
	if tr.Len() != 10000 {
		t.Fatalf("len = %d", tr.Len())
	}
}
