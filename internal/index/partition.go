package index

import (
	"bytes"
	"sort"

	"preemptdb/internal/pcontext"
)

// Range is one half-open key range [From, To) produced by Partition. A nil
// From or To keeps the corresponding bound open, matching Scan's convention.
type Range struct {
	From, To []byte
}

// partitionMaxAttempts bounds how many whole-sample restarts Partition takes
// before falling back to a single range: under heavy structural churn a
// degenerate (unpartitioned) answer is still correct, just unbalanced.
const partitionMaxAttempts = 8

// partitionMaxFrontier caps how many nodes of one level the sampler reads.
// The sample only needs enough separators for a few dozen morsels; reading an
// entire wide level (or the leaf level) would turn a hint computation into a
// scan.
const partitionMaxFrontier = 64

// Partition splits [from, to) into up to n balanced half-open ranges by
// sampling separator keys from the upper B+tree levels, for fan-out to
// parallel scan morsels. Each sampled node is copied under a briefly-held
// per-node latch that is released before the next node — no latch is ever
// held across node boundaries, polls, or the sample as a whole — and a node
// that turned obsolete restarts the whole sample (counted in
// PartitionRestarts). The returned ranges always form an exact contiguous
// cover of [from, to); under churn or on small trees there may be fewer than
// n of them, down to the single input range.
//
// Separators are only balance hints: a key sampled from an inner node is a
// valid range bound whether or not it still exists as a live row, so the
// cover is correct even when the sampled node has since split. Like Scan's
// emitted keys, the returned bounds reference the tree's immutable key
// allocations and must not be modified.
func (t *Tree[V]) Partition(ctx *pcontext.Context, from, to []byte, n int) []Range {
	single := []Range{{From: from, To: to}}
	if n <= 1 {
		return single
	}
	var seps [][]byte
	for attempt := 0; ; attempt++ {
		var ok bool
		seps, ok = t.sampleSeparators(ctx, from, to, n-1)
		if ok {
			break
		}
		t.partitionRestarts.Add(1)
		if attempt >= partitionMaxAttempts {
			return single
		}
	}
	if len(seps) == 0 {
		return single
	}
	sort.Slice(seps, func(i, j int) bool { return bytes.Compare(seps[i], seps[j]) < 0 })
	seps = compactKeys(seps)
	// Pick n-1 evenly spaced separators from the sorted candidate set.
	if len(seps) > n-1 {
		picked := make([][]byte, 0, n-1)
		for i := 1; i < n; i++ {
			picked = append(picked, seps[i*len(seps)/n])
		}
		seps = compactKeys(picked)
	}
	ranges := make([]Range, 0, len(seps)+1)
	lo := from
	for _, s := range seps {
		ranges = append(ranges, Range{From: lo, To: s})
		lo = s
	}
	return append(ranges, Range{From: lo, To: to})
}

// compactKeys removes adjacent duplicates from a sorted key list in place.
func compactKeys(keys [][]byte) [][]byte {
	out := keys[:0]
	for _, k := range keys {
		if len(out) == 0 || !bytes.Equal(out[len(out)-1], k) {
			out = append(out, k)
		}
	}
	return out
}

// sampleSeparators performs one level-by-level descent collecting keys
// strictly inside (from, to) from the upper levels, stopping as soon as it
// has `want` candidates or the frontier grows past the sampling budget.
// ok=false requests a restart (a sampled node turned obsolete, or the root
// moved under us).
func (t *Tree[V]) sampleSeparators(ctx *pcontext.Context, from, to []byte, want int) ([][]byte, bool) {
	root := t.root.Load()
	keys, children, leaf, ok := t.sampleNode(ctx, root, from, to, true)
	if !ok {
		return nil, false
	}
	if leaf {
		// Single-leaf tree: at most maxKeys rows, not worth splitting.
		return nil, true
	}
	seps := keys
	frontier := children
	for len(seps) < want && len(frontier) > 0 && len(frontier) <= partitionMaxFrontier {
		var next []*node[V]
		atLeaves := false
		for _, n := range frontier {
			ctx.Poll()
			keys, children, leaf, ok := t.sampleNode(ctx, n, from, to, false)
			if !ok {
				return nil, false
			}
			seps = append(seps, keys...)
			if leaf {
				atLeaves = true
			} else {
				next = append(next, children...)
			}
		}
		if atLeaves {
			break
		}
		frontier = next
	}
	return seps, true
}

// sampleNode copies node n's keys inside (from, to) — and, for inner nodes,
// the child pointers whose subtrees intersect [from, to) — under a briefly
// held latch, released before returning. The latched section runs
// non-preemptibly like every other latched section in this tree (a
// preemption while latched could deadlock a same-core transaction). The key
// slice headers reference the tree's immutable key allocations, so retaining
// them after the latch drops is safe (the same argument Scan makes for its
// emitted keys).
func (t *Tree[V]) sampleNode(ctx *pcontext.Context, n *node[V], from, to []byte, isRoot bool) (keys [][]byte, children []*node[V], leaf bool, ok bool) {
	pcontext.NonPreemptible(ctx, func() {
		if !n.latchForRead() {
			return // obsolete: restart the sample
		}
		if isRoot && t.root.Load() != n {
			n.unlatchForRead()
			return // root grew between load and latch
		}
		leaf = n.leaf
		for i := 0; i < n.numKeys; i++ {
			k := n.keys[i]
			if from != nil && bytes.Compare(k, from) <= 0 {
				continue
			}
			if to != nil && bytes.Compare(k, to) >= 0 {
				break
			}
			keys = append(keys, k)
		}
		if !leaf {
			lo := 0
			if from != nil {
				lo = n.childIndex(from)
			}
			hi := n.numKeys
			if to != nil {
				hi, _ = n.search(to)
			}
			for i := lo; i <= hi && i <= n.numKeys; i++ {
				children = append(children, n.children[i])
			}
		}
		n.unlatchForRead()
		ok = true
	})
	return keys, children, leaf, ok
}

// latchForRead acquires n's latch for a pure read, spinning like writeLock
// and failing only on obsolete nodes. Pair with unlatchForRead, which —
// unlike writeUnlock — restores the version word unchanged: nothing was
// modified, so concurrent optimistic readers must not be forced to restart
// on account of a read-only sampler. Writers spin for the (nanoseconds-long)
// hold; the latch is never held across node boundaries.
func (n *node[V]) latchForRead() bool {
	for {
		v := n.version.Load()
		if v&obsoleteBit != 0 {
			return false
		}
		if v&lockedBit != 0 {
			continue
		}
		if n.version.CompareAndSwap(v, v|lockedBit) {
			return true
		}
	}
}

// unlatchForRead releases a latch taken by latchForRead without bumping the
// version counter.
func (n *node[V]) unlatchForRead() {
	n.version.Add(^uint64(lockedBit) + 1)
}
