package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func key(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func TestEmptyTree(t *testing.T) {
	tr := New[int]()
	if tr.Len() != 0 {
		t.Fatal("new tree not empty")
	}
	if _, ok := tr.Get(nil, key(1)); ok {
		t.Fatal("get on empty tree succeeded")
	}
	if tr.Delete(nil, key(1)) {
		t.Fatal("delete on empty tree succeeded")
	}
	count := 0
	tr.Scan(nil, nil, nil, func(k []byte, v int) bool { count++; return true })
	if count != 0 {
		t.Fatal("scan on empty tree emitted entries")
	}
}

func TestInsertGet(t *testing.T) {
	tr := New[int]()
	const n = 10000 // forces several levels of splits
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if !tr.Insert(nil, key(i), i*2) {
			t.Fatalf("insert %d reported replace", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Get(nil, key(i))
		if !ok || v != i*2 {
			t.Fatalf("get %d = (%d,%v)", i, v, ok)
		}
	}
	if _, ok := tr.Get(nil, key(n+5)); ok {
		t.Fatal("found missing key")
	}
}

func TestInsertReplace(t *testing.T) {
	tr := New[string]()
	if !tr.Insert(nil, key(1), "a") {
		t.Fatal("first insert must report new")
	}
	if tr.Insert(nil, key(1), "b") {
		t.Fatal("second insert must report replace")
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
	v, _ := tr.Get(nil, key(1))
	if v != "b" {
		t.Fatalf("value = %q", v)
	}
}

func TestDelete(t *testing.T) {
	tr := New[int]()
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Insert(nil, key(i), i)
	}
	for i := 0; i < n; i += 2 {
		if !tr.Delete(nil, key(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Delete(nil, key(0)) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != n/2 {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(nil, key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("get %d = %v, want %v", i, ok, want)
		}
	}
}

func TestScanOrderAndBounds(t *testing.T) {
	tr := New[int]()
	const n = 5000
	for _, i := range rand.New(rand.NewSource(2)).Perm(n) {
		tr.Insert(nil, key(i), i)
	}
	// Full scan: ascending, complete.
	var got []int
	tr.Scan(nil, nil, nil, func(k []byte, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != n {
		t.Fatalf("scan emitted %d of %d", len(got), n)
	}
	if !sort.IntsAreSorted(got) {
		t.Fatal("scan not in ascending order")
	}
	// Bounded scan [100, 200).
	got = got[:0]
	tr.Scan(nil, key(100), key(200), func(k []byte, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 100 || got[0] != 100 || got[99] != 199 {
		t.Fatalf("bounded scan wrong: len=%d first=%v last=%v", len(got), got[0], got[len(got)-1])
	}
	// Early stop.
	count := 0
	tr.Scan(nil, nil, nil, func(k []byte, v int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop emitted %d", count)
	}
}

func TestScanFromMissingKey(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 100; i += 10 {
		tr.Insert(nil, key(i), i)
	}
	var got []int
	tr.Scan(nil, key(15), key(45), func(k []byte, v int) bool {
		got = append(got, v)
		return true
	})
	want := []int{20, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMin(t *testing.T) {
	tr := New[int]()
	if _, _, ok := tr.Min(nil); ok {
		t.Fatal("min on empty tree")
	}
	for i := 100; i > 0; i-- {
		tr.Insert(nil, key(i), i)
	}
	k, v, ok := tr.Min(nil)
	if !ok || v != 1 || !bytes.Equal(k, key(1)) {
		t.Fatalf("min = (%x,%d,%v)", k, v, ok)
	}
}

func TestVariableLengthKeys(t *testing.T) {
	tr := New[string]()
	keys := []string{"", "a", "aa", "ab", "b", "ba", "z", "zz", "zzz"}
	for _, k := range keys {
		tr.Insert(nil, []byte(k), k)
	}
	var got []string
	tr.Scan(nil, nil, nil, func(k []byte, v string) bool {
		got = append(got, v)
		return true
	})
	if !sort.StringsAreSorted(got) || len(got) != len(keys) {
		t.Fatalf("got %v", got)
	}
}

func TestKeyIsCopied(t *testing.T) {
	tr := New[int]()
	k := []byte("mutable")
	tr.Insert(nil, k, 1)
	k[0] = 'X'
	if _, ok := tr.Get(nil, []byte("mutable")); !ok {
		t.Fatal("tree must copy inserted keys")
	}
}

func TestQuickAgainstReferenceMap(t *testing.T) {
	type op struct {
		Insert bool
		Key    uint16
		Val    int32
	}
	err := quick.Check(func(ops []op) bool {
		tr := New[int32]()
		ref := map[uint16]int32{}
		for _, o := range ops {
			k := key(int(o.Key))
			if o.Insert {
				isNew := tr.Insert(nil, k, o.Val)
				_, existed := ref[o.Key]
				if isNew == existed {
					return false
				}
				ref[o.Key] = o.Val
			} else {
				del := tr.Delete(nil, k)
				_, existed := ref[o.Key]
				if del != existed {
					return false
				}
				delete(ref, o.Key)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get(nil, key(int(k)))
			if !ok || got != v {
				return false
			}
		}
		// Scan must visit exactly the reference contents in order.
		var prev []byte
		count := 0
		good := true
		tr.Scan(nil, nil, nil, func(k []byte, v int32) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				good = false
				return false
			}
			prev = append(prev[:0], k...)
			count++
			return true
		})
		return good && count == len(ref)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	tr := New[uint64]()
	const writers, perWriter = 4, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := w*perWriter + i
				tr.Insert(nil, key(k), uint64(k))
			}
		}(w)
	}
	// Concurrent readers continuously verify that any value found matches
	// its key.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func(seed int64) {
			defer rwg.Done()
			rnd := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rnd.Intn(writers * perWriter)
				if v, ok := tr.Get(nil, key(k)); ok && v != uint64(k) {
					t.Errorf("key %d has value %d", k, v)
					return
				}
			}
		}(int64(r))
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	if tr.Len() != writers*perWriter {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 0; i < writers*perWriter; i++ {
		if _, ok := tr.Get(nil, key(i)); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
}

func TestConcurrentScanSeesSortedConsistentData(t *testing.T) {
	tr := New[uint64]()
	// Preload half, then scan while the other half is inserted.
	const n = 20000
	for i := 0; i < n; i += 2 {
		tr.Insert(nil, key(i), uint64(i))
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i < n; i += 2 {
			tr.Insert(nil, key(i), uint64(i))
		}
	}()
	for round := 0; round < 20; round++ {
		var prev []byte
		seenPreloaded := 0
		tr.Scan(nil, nil, nil, func(k []byte, v uint64) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Error("scan out of order under concurrency")
				return false
			}
			prev = append(prev[:0], k...)
			if binary.BigEndian.Uint64(k) != v {
				t.Errorf("key/value mismatch: %x -> %d", k, v)
				return false
			}
			if v%2 == 0 {
				seenPreloaded++
			}
			return true
		})
		// Every preloaded (even) key existed for the scan's whole lifetime
		// and must be observed.
		if seenPreloaded != n/2 {
			t.Fatalf("scan missed preloaded keys: %d of %d", seenPreloaded, n/2)
		}
	}
	wg.Wait()
}

func TestConcurrentDeleteInsertDisjoint(t *testing.T) {
	tr := New[int]()
	const n = 10000
	for i := 0; i < n; i++ {
		tr.Insert(nil, key(i), i)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n/2; i++ {
			tr.Delete(nil, key(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := n; i < n+n/2; i++ {
			tr.Insert(nil, key(i), i)
		}
	}()
	wg.Wait()
	if tr.Len() != n {
		t.Fatalf("len = %d, want %d", tr.Len(), n)
	}
	for i := n / 2; i < n+n/2; i++ {
		if _, ok := tr.Get(nil, key(i)); !ok {
			t.Fatalf("key %d missing", i)
		}
	}
}

func TestRestartsCounter(t *testing.T) {
	tr := New[int]()
	tr.Insert(nil, key(1), 1)
	_ = tr.Restarts() // must not panic; contention may or may not have occurred
}

func TestManyDuplicatePrefixKeys(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("prefix/%06d/suffix", i))
		tr.Insert(nil, k, i)
	}
	var got []int
	tr.Scan(nil, []byte("prefix/000100"), []byte("prefix/000200"), func(k []byte, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 100 || got[0] != 100 {
		t.Fatalf("prefix scan: len=%d first=%d", len(got), got[0])
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New[int]()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Insert(nil, key(i), i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(nil, key(i%n))
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(nil, key(i), i)
	}
}

func BenchmarkScan100(b *testing.B) {
	tr := New[int]()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Insert(nil, key(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := (i * 97) % (n - 200)
		cnt := 0
		tr.Scan(nil, key(start), key(start+100), func(k []byte, v int) bool {
			cnt++
			return true
		})
	}
}
