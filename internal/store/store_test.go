package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func openDir(t *testing.T) *Dir {
	t.Helper()
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// writeBatch appends p as one "group-commit batch": write then boundary mark,
// the sequence the WAL manager performs.
func writeBatch(t *testing.T, l *Log, p []byte) {
	t.Helper()
	if _, err := l.Write(p); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.MarkBoundary(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, d *Dir, from uint64) []byte {
	t.Helper()
	r, err := d.OpenReplay(from)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestLogRotatesAtBatchBoundaries(t *testing.T) {
	d := openDir(t)
	l := d.NewLog(10)                   // rotate once a segment holds >= 10 bytes
	writeBatch(t, l, []byte("aaaa"))    // seg0: 4
	writeBatch(t, l, []byte("bbbbbbb")) // seg0: 11 -> rotate
	writeBatch(t, l, []byte("cc"))      // seg1: 2
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := d.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0].Start != 0 || segs[0].Size != 11 || segs[1].Start != 11 || segs[1].Size != 2 {
		t.Fatalf("segments = %+v", segs)
	}
	if got := readAll(t, d, 0); !bytes.Equal(got, []byte("aaaabbbbbbbcc")) {
		t.Fatalf("stream = %q", got)
	}
	// Replay from inside the first segment and from a segment boundary.
	if got := readAll(t, d, 4); !bytes.Equal(got, []byte("bbbbbbbcc")) {
		t.Fatalf("stream from 4 = %q", got)
	}
	if got := readAll(t, d, 11); !bytes.Equal(got, []byte("cc")) {
		t.Fatalf("stream from 11 = %q", got)
	}
}

func TestTruncateTailAndReposition(t *testing.T) {
	d := openDir(t)
	l := d.NewLog(10)
	writeBatch(t, l, []byte("aaaabbbbbbb")) // 11 bytes, rotates
	writeBatch(t, l, []byte("cccc"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: garbage appended to the last segment that
	// replay (the WAL layer) rejected past offset 13.
	segs, _ := d.Segments()
	f, err := os.OpenFile(segs[1].Path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("torn"))
	f.Close()

	if err := d.TruncateTail(13); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, d, 0); !bytes.Equal(got, []byte("aaaabbbbbbbcc")) {
		t.Fatalf("after truncate = %q", got)
	}

	l2 := d.NewLog(1 << 20)
	if err := l2.Reposition(13); err != nil {
		t.Fatal(err)
	}
	writeBatch(t, l2, []byte("dd"))
	l2.Close()
	if got := readAll(t, d, 0); !bytes.Equal(got, []byte("aaaabbbbbbbccdd")) {
		t.Fatalf("after reappend = %q", got)
	}
}

func TestRepositionInsideSegmentRefused(t *testing.T) {
	d := openDir(t)
	l := d.NewLog(1 << 20)
	writeBatch(t, l, []byte("aaaa"))
	l.Close()
	l2 := d.NewLog(1 << 20)
	if err := l2.Reposition(2); err == nil {
		t.Fatal("reposition inside a segment must be refused")
	}
}

func TestRepositionMidStreamBoundaryRefused(t *testing.T) {
	// lsn == a mid-stream segment boundary with non-empty segments past it:
	// appending there would fork the stream past the later segments. Only
	// reachable through misuse (recovery runs TruncateTail first), but it must
	// be refused rather than silently corrupt the stream.
	d := openDir(t)
	l := d.NewLog(4)
	writeBatch(t, l, []byte("aaaa")) // seg0 [0,4), rotates
	writeBatch(t, l, []byte("bbbb")) // seg1 [4,8), rotates
	writeBatch(t, l, []byte("cc"))   // seg2 [8,10)
	l.Close()

	l2 := d.NewLog(1 << 20)
	if err := l2.Reposition(4); err == nil {
		t.Fatal("reposition at a mid-stream boundary must be refused")
	}
	// A stray empty segment starting beyond lsn also marks a stream position
	// past it; repositioning short of it must be refused too.
	d2 := openDir(t)
	writeBatch(t, d2.NewLog(1<<20), []byte("aaaa"))
	if f, err := os.Create(d2.SegmentPath(4)); err != nil {
		t.Fatal(err)
	} else {
		f.Close()
	}
	l3 := d2.NewLog(1 << 20)
	if err := l3.Reposition(0); err == nil {
		t.Fatal("reposition below a stray empty successor must be refused")
	}
	// The true stream end still repositions fine.
	if err := l3.Reposition(4); err != nil {
		t.Fatal(err)
	}
	l3.Close()
}

func TestRepositionPrefersEmptyRotationSuccessor(t *testing.T) {
	// Crash right after rotation: full predecessor [0,4) plus empty
	// successor at 4. Reposition(4) must append to the successor, not fork
	// the stream by reopening the predecessor.
	d := openDir(t)
	l := d.NewLog(4)
	writeBatch(t, l, []byte("aaaa")) // rotates, creating empty successor
	// Simulate the crash: drop the Log without Close (file handles leak in
	// tests but the on-disk state is what matters).
	segs, _ := d.Segments()
	if len(segs) != 2 || segs[1].Size != 0 {
		t.Fatalf("segments = %+v", segs)
	}

	l2 := d.NewLog(1 << 20)
	if err := l2.Reposition(4); err != nil {
		t.Fatal(err)
	}
	writeBatch(t, l2, []byte("bb"))
	l2.Close()
	segs, _ = d.Segments()
	if len(segs) != 2 || segs[0].Size != 4 || segs[1].Size != 2 {
		t.Fatalf("stream forked: %+v", segs)
	}
	if got := readAll(t, d, 0); !bytes.Equal(got, []byte("aaaabb")) {
		t.Fatalf("stream = %q", got)
	}
}

func TestLazyWritePositionsAtStreamEnd(t *testing.T) {
	d := openDir(t)
	l := d.NewLog(1 << 20)
	writeBatch(t, l, []byte("aaaa"))
	l.Close()
	// A fresh unpositioned Log must continue at byte 4, not restart at 0.
	l2 := d.NewLog(1 << 20)
	writeBatch(t, l2, []byte("bb"))
	l2.Close()
	if got := readAll(t, d, 0); !bytes.Equal(got, []byte("aaaabb")) {
		t.Fatalf("stream = %q", got)
	}
}

func TestWriteCheckpointAtomicity(t *testing.T) {
	d := openDir(t)
	if err := d.WriteCheckpoint(42, func(w io.Writer) error {
		_, err := w.Write([]byte("snapshot"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	cks, err := d.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 1 || cks[0].LSN != 42 {
		t.Fatalf("checkpoints = %+v", cks)
	}
	b, _ := os.ReadFile(cks[0].Path)
	if !bytes.Equal(b, []byte("snapshot")) {
		t.Fatalf("contents = %q", b)
	}

	// A failing writer must leave neither a checkpoint nor a temp file.
	boom := errors.New("boom")
	if err := d.WriteCheckpoint(43, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	cks, _ = d.Checkpoints()
	if len(cks) != 1 {
		t.Fatalf("failed checkpoint installed: %+v", cks)
	}
	ents, _ := os.ReadDir(d.Path())
	for _, e := range ents {
		if filepath.Ext(e.Name()) == tmpSuffix {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestOpenClearsAbandonedTempFiles(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, ckptName(7)+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("abandoned temp file survived Open")
	}
	cks, _ := d.Checkpoints()
	if len(cks) != 0 {
		t.Fatalf("temp file visible as checkpoint: %+v", cks)
	}
}

func TestPruneCheckpointsKeepsNewest(t *testing.T) {
	d := openDir(t)
	for _, lsn := range []uint64{10, 20, 30} {
		if err := d.WriteCheckpoint(lsn, func(w io.Writer) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.PruneCheckpoints(2); err != nil {
		t.Fatal(err)
	}
	cks, _ := d.Checkpoints()
	if len(cks) != 2 || cks[0].LSN != 20 || cks[1].LSN != 30 {
		t.Fatalf("checkpoints = %+v", cks)
	}
}

func TestTruncateSegmentsKeepsCoveringSegment(t *testing.T) {
	d := openDir(t)
	l := d.NewLog(4)
	writeBatch(t, l, []byte("aaaa")) // seg [0,4)
	writeBatch(t, l, []byte("bbbb")) // seg [4,8)
	writeBatch(t, l, []byte("cc"))   // seg [8,10)
	l.Close()

	// keepLSN=6 lands inside [4,8): only [0,4) may go.
	if err := d.TruncateSegments(6); err != nil {
		t.Fatal(err)
	}
	segs, _ := d.Segments()
	if len(segs) != 2 || segs[0].Start != 4 {
		t.Fatalf("segments = %+v", segs)
	}
	if got := readAll(t, d, 6); !bytes.Equal(got, []byte("bbcc")) {
		t.Fatalf("stream from 6 = %q", got)
	}
	// keepLSN=8: [4,8) goes too; the empty successor rule keeps [8,10).
	if err := d.TruncateSegments(8); err != nil {
		t.Fatal(err)
	}
	segs, _ = d.Segments()
	if len(segs) != 1 || segs[0].Start != 8 {
		t.Fatalf("segments = %+v", segs)
	}
}

func TestTruncateSegmentsNeverRemovesNewest(t *testing.T) {
	// A checkpoint taken at the exact stream end covers every logged byte,
	// but the newest segment is the live Log's append target and the
	// stream-end marker — it must survive truncation.
	d := openDir(t)
	l := d.NewLog(1 << 20)
	writeBatch(t, l, []byte("aaaa"))
	if err := d.TruncateSegments(4); err != nil {
		t.Fatal(err)
	}
	segs, _ := d.Segments()
	if len(segs) != 1 || segs[0].Size != 4 {
		t.Fatalf("active segment removed: %+v", segs)
	}
	// The live log keeps appending to the same, still-linked file.
	writeBatch(t, l, []byte("bb"))
	l.Close()
	if got := readAll(t, d, 0); !bytes.Equal(got, []byte("aaaabb")) {
		t.Fatalf("stream = %q", got)
	}
}

func TestSegmentsDetectGaps(t *testing.T) {
	d := openDir(t)
	l := d.NewLog(4)
	writeBatch(t, l, []byte("aaaa"))
	writeBatch(t, l, []byte("bbbb"))
	writeBatch(t, l, []byte("cc"))
	l.Close()
	segs, _ := d.Segments()
	if err := os.Remove(segs[1].Path); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Segments(); err == nil {
		t.Fatal("gap in the segment stream not detected")
	}
}
