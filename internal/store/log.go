package store

import (
	"fmt"
	"os"
)

// Log is the file-backed WAL sink: an append-only, size-rotated segment
// stream implementing io.Writer, wal.Syncer and wal.BatchBoundaryMarker. The
// WAL manager flushes whole group-commit batches and calls MarkBoundary after
// each, so rotation — which only happens inside MarkBoundary — always falls
// on a frame boundary and no frame ever spans two segment files.
//
// A Log starts unpositioned and opens no file until Reposition (or the first
// Write, which positions at the end of the existing stream). This lets the
// engine be constructed — with the Log already installed as its sink — before
// recovery has replayed the existing segments and truncated any torn tail.
type Log struct {
	d        *Dir
	segBytes int64
	f        *os.File
	start    uint64 // current segment's first byte, absolute LSN
	size     int64  // bytes in the current segment
	closed   bool
}

// NewLog returns an unpositioned Log over the directory rotating segments at
// segBytes (minimum enforced at 1: every boundary rotates).
func (d *Dir) NewLog(segBytes int64) *Log {
	if segBytes < 1 {
		segBytes = 64 << 20
	}
	return &Log{d: d, segBytes: segBytes}
}

// Reposition opens the log for appending at the absolute position lsn, which
// must be the verified end of the recovered stream: either the exact end of
// an existing segment (TruncateTail has run) or a fresh position with no
// segments at all. Recovery calls this once, after replay, before the first
// commit.
func (l *Log) Reposition(lsn uint64) error {
	if l.closed {
		return ErrClosed
	}
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	segs, err := l.d.Segments()
	if err != nil {
		return err
	}
	// Pick the segment to keep appending to: the one that ends exactly at
	// lsn, or — when a crash at rotation left both a full predecessor ending
	// at lsn and its empty successor starting there — the successor (it is
	// later in start order, so the last match wins).
	target := -1
	for i, s := range segs {
		if s.End() == lsn && (s.Size > 0 || s.Start == lsn) {
			target = i
			continue
		}
		if s.Start >= lsn {
			// The stream continues past lsn — a non-empty segment at or
			// beyond it, or a stray empty successor starting further on.
			// Appending from lsn would fork the stream past those bytes.
			// (The empty just-rotated successor starting exactly at lsn is
			// the target case above, not this one.)
			return fmt.Errorf("store: reposition %d would fork the stream: segment at %d (size %d) lies at or past it",
				lsn, s.Start, s.Size)
		}
		if lsn < s.End() {
			return fmt.Errorf("store: reposition %d lands inside segment at %d (size %d): truncate the tail first",
				lsn, s.Start, s.Size)
		}
	}
	if target >= 0 {
		s := segs[target]
		f, err := os.OpenFile(s.Path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		l.f, l.start, l.size = f, s.Start, s.Size
		return nil
	}
	if n := len(segs); n > 0 && segs[n-1].End() != lsn {
		return fmt.Errorf("store: reposition %d does not match stream end %d", lsn, segs[n-1].End())
	}
	return l.create(lsn)
}

// create starts a fresh segment whose first byte is absolute position start.
func (l *Log) create(start uint64) error {
	f, err := os.OpenFile(l.d.join(segName(start)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := l.d.syncDir(); err != nil {
		f.Close()
		return err
	}
	l.f, l.start, l.size = f, start, 0
	return nil
}

// Write appends to the current segment. An unpositioned Log positions itself
// at the end of the existing stream first.
func (l *Log) Write(p []byte) (int, error) {
	if l.closed {
		return 0, ErrClosed
	}
	if l.f == nil {
		segs, err := l.d.Segments()
		if err != nil {
			return 0, err
		}
		end := uint64(0)
		if n := len(segs); n > 0 {
			end = segs[n-1].End()
		}
		if err := l.Reposition(end); err != nil {
			return 0, err
		}
	}
	n, err := l.f.Write(p)
	l.size += int64(n)
	return n, err
}

// Sync makes the current segment's appended bytes durable.
func (l *Log) Sync() error {
	if l.closed {
		return ErrClosed
	}
	if l.f == nil {
		return nil
	}
	return l.f.Sync()
}

// MarkBoundary is the WAL manager's after-batch hook: the stream position is
// on a frame boundary, so this is the only place the log may rotate. The old
// segment is synced and closed before its successor is created, keeping the
// name-derived stream contiguous across a crash at any step.
func (l *Log) MarkBoundary() error {
	if l.closed {
		return ErrClosed
	}
	if l.f == nil || l.size < l.segBytes {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		l.f = nil
		return err
	}
	l.f = nil
	return l.create(l.start + uint64(l.size))
}

// Close syncs and closes the current segment. Further use fails with
// ErrClosed.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
