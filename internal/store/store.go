// Package store manages PreemptDB's on-disk layout: a data directory holding
// size-rotated WAL segments and atomically-installed checkpoint files.
//
//	wal-<start>.log    WAL segment; <start> is the 16-hex-digit absolute LSN
//	                   of the segment's first byte, so the file set is a
//	                   contiguous byte stream and any segment's coverage is
//	                   known from names alone.
//	ckpt-<lsn>.ckpt    checkpoint whose contents include every transaction
//	                   whose frames end at or before <lsn>; recovery replays
//	                   the WAL from <lsn>.
//	*.tmp              in-flight checkpoint writes; removed at Open.
//
// Segments rotate only at group-commit batch boundaries (the Log is the WAL
// manager's BatchBoundaryMarker), so a frame never spans two files and only
// the final segment can end in a torn frame after a crash. Checkpoints are
// written to a temp file, fsynced, renamed into place, and the directory
// fsynced — a crash anywhere leaves either the complete old state or the
// complete new state, never a half-checkpoint under the real name.
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	ckptPrefix = "ckpt-"
	ckptSuffix = ".ckpt"
	tmpSuffix  = ".tmp"
)

// Dir is an opened data directory.
type Dir struct {
	path string
}

// Open prepares dir: creates it if missing and clears abandoned temp files
// from interrupted checkpoint writes (they were never renamed into place, so
// they are invisible to recovery by construction — removing them only
// reclaims space).
func Open(dir string) (*Dir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range ents {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), tmpSuffix) {
			os.Remove(filepath.Join(dir, ent.Name()))
		}
	}
	return &Dir{path: dir}, nil
}

// Path returns the directory path.
func (d *Dir) Path() string { return d.path }

// TempSuffix is the extension of in-flight checkpoint temp files; exported so
// crash simulators can fabricate the artifact an interrupted checkpoint
// leaves behind.
const TempSuffix = tmpSuffix

// SegmentPath returns the path a WAL segment starting at LSN start has (or
// would have). Exported for crash simulators that fabricate the empty
// successor a crash mid-rotation leaves behind.
func (d *Dir) SegmentPath(start uint64) string { return d.join(segName(start)) }

// CheckpointPath returns the path a checkpoint at lsn has (or would have).
func (d *Dir) CheckpointPath(lsn uint64) string { return d.join(ckptName(lsn)) }

func segName(start uint64) string   { return fmt.Sprintf("%s%016x%s", segPrefix, start, segSuffix) }
func ckptName(lsn uint64) string    { return fmt.Sprintf("%s%016x%s", ckptPrefix, lsn, ckptSuffix) }
func (d *Dir) join(n string) string { return filepath.Join(d.path, n) }

// parseName extracts the 16-hex-digit position from a prefixed file name.
func parseName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hexPart := name[len(prefix) : len(name)-len(suffix)]
	if len(hexPart) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Segment describes one WAL segment file.
type Segment struct {
	Start uint64 // absolute LSN of the segment's first byte
	Size  int64
	Path  string
}

// End returns the absolute LSN one past the segment's last byte.
func (s Segment) End() uint64 { return s.Start + uint64(s.Size) }

// Segments lists WAL segments sorted by start LSN, verifying the set forms a
// contiguous stream (each segment starts where the previous one ends). A gap
// means files were lost or tampered with, and replay past it would be wrong.
func (d *Dir) Segments() ([]Segment, error) {
	ents, err := os.ReadDir(d.path)
	if err != nil {
		return nil, err
	}
	var segs []Segment
	for _, ent := range ents {
		start, ok := parseName(ent.Name(), segPrefix, segSuffix)
		if !ok {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, Segment{Start: start, Size: info.Size(), Path: d.join(ent.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Start < segs[j].Start })
	for i := 1; i < len(segs); i++ {
		if segs[i].Start != segs[i-1].End() {
			return nil, fmt.Errorf("store: WAL gap: segment at %d ends at %d but next starts at %d",
				segs[i-1].Start, segs[i-1].End(), segs[i].Start)
		}
	}
	return segs, nil
}

// Checkpoint describes one checkpoint file.
type Checkpoint struct {
	LSN  uint64 // log position replay resumes from after restoring it
	Path string
}

// Checkpoints lists checkpoint files sorted by LSN ascending (newest last).
func (d *Dir) Checkpoints() ([]Checkpoint, error) {
	ents, err := os.ReadDir(d.path)
	if err != nil {
		return nil, err
	}
	var cks []Checkpoint
	for _, ent := range ents {
		lsn, ok := parseName(ent.Name(), ckptPrefix, ckptSuffix)
		if !ok {
			continue
		}
		cks = append(cks, Checkpoint{LSN: lsn, Path: d.join(ent.Name())})
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].LSN < cks[j].LSN })
	return cks, nil
}

// WriteCheckpoint atomically installs a checkpoint for log position lsn:
// write is streamed to a temp file, the file is fsynced, renamed to its final
// name, and the directory entry is fsynced. If write (or any I/O step) fails
// the temp file is removed and no checkpoint appears.
func (d *Dir) WriteCheckpoint(lsn uint64, write func(io.Writer) error) error {
	tmp := d.join(ckptName(lsn) + tmpSuffix)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	fail := func(e error) error {
		f.Close()
		os.Remove(tmp)
		return e
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, d.join(ckptName(lsn))); err != nil {
		os.Remove(tmp)
		return err
	}
	return d.syncDir()
}

// PruneCheckpoints removes all but the keep newest checkpoints. Keeping more
// than one lets recovery fall back to an older checkpoint when the newest one
// fails its CRC.
func (d *Dir) PruneCheckpoints(keep int) error {
	cks, err := d.Checkpoints()
	if err != nil {
		return err
	}
	if len(cks) <= keep {
		return nil
	}
	for _, ck := range cks[:len(cks)-keep] {
		if err := os.Remove(ck.Path); err != nil {
			return err
		}
	}
	return d.syncDir()
}

// TruncateSegments removes WAL segments that lie entirely below keepLSN —
// every byte they hold is covered by a retained checkpoint. The segment
// containing keepLSN itself (and everything after) stays, and the newest
// segment is never removed even when fully covered: it is the live Log's
// append target (unlinking it would silently sever every later commit) and
// the stream-end marker appending resumes from after a reopen. Callers pass
// the OLDEST retained checkpoint's LSN so a fallback restore never finds its
// log missing.
func (d *Dir) TruncateSegments(keepLSN uint64) error {
	segs, err := d.Segments()
	if err != nil {
		return err
	}
	removed := false
	for _, s := range segs[:max(len(segs)-1, 0)] {
		if s.End() > keepLSN || s.End() == s.Start {
			break // this segment (or an empty successor) is still needed
		}
		if err := os.Remove(s.Path); err != nil {
			return err
		}
		removed = true
	}
	if !removed {
		return nil
	}
	return d.syncDir()
}

// TruncateTail trims the log to end exactly at validEnd, the position replay
// verified as the end of the last whole frame: the segment containing
// validEnd is truncated to it and any later segments (a crash can leave an
// empty just-rotated successor) are removed. Must be called before appending
// resumes.
func (d *Dir) TruncateTail(validEnd uint64) error {
	segs, err := d.Segments()
	if err != nil {
		return err
	}
	dirty := false
	for _, s := range segs {
		switch {
		case s.End() <= validEnd:
			continue // wholly valid
		case s.Start <= validEnd:
			if err := os.Truncate(s.Path, int64(validEnd-s.Start)); err != nil {
				return err
			}
			if err := syncFile(s.Path); err != nil {
				return err
			}
			dirty = true
		default:
			// Starts past the valid end: nothing in it can be trusted.
			if err := os.Remove(s.Path); err != nil {
				return err
			}
			dirty = true
		}
	}
	if !dirty {
		return nil
	}
	return d.syncDir()
}

// OpenReplay returns a reader over the contiguous WAL stream starting at lsn
// (which must be a frame boundary — in practice a checkpoint's LSN or 0).
// The reader spans all segments from the one containing lsn to the newest.
// An lsn at or past the end of the log yields an empty reader.
func (d *Dir) OpenReplay(lsn uint64) (io.ReadCloser, error) {
	segs, err := d.Segments()
	if err != nil {
		return nil, err
	}
	var files []*os.File
	var readers []io.Reader
	fail := func(e error) (io.ReadCloser, error) {
		for _, f := range files {
			f.Close()
		}
		return nil, e
	}
	for _, s := range segs {
		if s.End() <= lsn {
			continue
		}
		f, err := os.Open(s.Path)
		if err != nil {
			return fail(err)
		}
		if s.Start < lsn {
			if _, err := f.Seek(int64(lsn-s.Start), io.SeekStart); err != nil {
				f.Close()
				return fail(err)
			}
		} else if s.Start > lsn && len(files) == 0 {
			f.Close()
			return fail(fmt.Errorf("store: replay start %d precedes oldest segment at %d", lsn, s.Start))
		}
		files = append(files, f)
		readers = append(readers, f)
	}
	return &multiFileReader{r: io.MultiReader(readers...), files: files}, nil
}

type multiFileReader struct {
	r     io.Reader
	files []*os.File
}

func (m *multiFileReader) Read(p []byte) (int, error) { return m.r.Read(p) }

func (m *multiFileReader) Close() error {
	var first error
	for _, f := range m.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (d *Dir) syncDir() error { return syncFile(d.path) }

func syncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ErrClosed reports use of a closed Log.
var ErrClosed = errors.New("store: log closed")
